package models

import (
	"math/rand"

	"nnlqp/internal/onnx"
)

// AlexNetConfig parameterizes the AlexNet family (Krizhevsky et al.).
type AlexNetConfig struct {
	Batch      int
	Channels   [5]int // conv1..conv5 output channels
	Kernels    [5]int
	FCWidth    int
	NumClasses int
}

// BaseAlexNet is the canonical configuration.
func BaseAlexNet(batch int) AlexNetConfig {
	return AlexNetConfig{
		Batch:      batch,
		Channels:   [5]int{96, 256, 384, 384, 256},
		Kernels:    [5]int{11, 5, 3, 3, 3},
		FCWidth:    4096,
		NumClasses: 1000,
	}
}

// BuildAlexNet constructs the graph for a configuration.
func BuildAlexNet(cfg AlexNetConfig) *onnx.Graph {
	b := onnx.NewBuilder("alexnet", FamilyAlexNet, onnx.Shape{cfg.Batch, 3, 224, 224})
	x := b.Relu(b.Conv(b.Input(), cfg.Channels[0], cfg.Kernels[0], 4, cfg.Kernels[0]/2-2, 1))
	x = b.LRN(x, 5)
	x = b.MaxPool(x, 3, 2, 0)
	x = b.Relu(b.Conv(x, cfg.Channels[1], cfg.Kernels[1], 1, cfg.Kernels[1]/2, 2))
	x = b.LRN(x, 5)
	x = b.MaxPool(x, 3, 2, 0)
	x = b.Relu(b.Conv(x, cfg.Channels[2], cfg.Kernels[2], 1, cfg.Kernels[2]/2, 1))
	x = b.Relu(b.Conv(x, cfg.Channels[3], cfg.Kernels[3], 1, cfg.Kernels[3]/2, 2))
	x = b.Relu(b.Conv(x, cfg.Channels[4], cfg.Kernels[4], 1, cfg.Kernels[4]/2, 2))
	x = b.MaxPool(x, 3, 2, 0)
	x = b.Flatten(x)
	x = b.Dropout(b.Relu(b.Gemm(x, cfg.FCWidth)))
	x = b.Dropout(b.Relu(b.Gemm(x, cfg.FCWidth)))
	x = b.Gemm(x, cfg.NumClasses)
	return b.MustFinish(x)
}

// AlexNetVariant draws a random kernel-size / channel variant.
func AlexNetVariant(rng *rand.Rand, batch int) *onnx.Graph {
	cfg := BaseAlexNet(batch)
	m := widthMult(rng, 0.5, 1.75)
	for i := range cfg.Channels {
		group := 1
		if i == 1 || i == 3 || i == 4 {
			group = 2
		}
		cfg.Channels[i] = roundCh(float64(cfg.Channels[i])*m, 8*group)
	}
	cfg.Kernels[1] = pickKernel(rng, 3, 5, 7)
	for i := 2; i < 5; i++ {
		cfg.Kernels[i] = pickKernel(rng, 3, 5)
	}
	cfg.FCWidth = roundCh(float64(cfg.FCWidth)*widthMult(rng, 0.5, 1.25), 64)
	return BuildAlexNet(cfg)
}

// VGGConfig parameterizes the VGG family (Simonyan & Zisserman).
type VGGConfig struct {
	Batch      int
	Widths     [5]int
	Depths     [5]int
	Kernel     int
	FCWidth    int
	NumClasses int
}

// BaseVGG is VGG-16.
func BaseVGG(batch int) VGGConfig {
	return VGGConfig{
		Batch:      batch,
		Widths:     [5]int{64, 128, 256, 512, 512},
		Depths:     [5]int{2, 2, 3, 3, 3},
		Kernel:     3,
		FCWidth:    4096,
		NumClasses: 1000,
	}
}

// BuildVGG constructs the graph for a configuration.
func BuildVGG(cfg VGGConfig) *onnx.Graph {
	b := onnx.NewBuilder("vgg", FamilyVGG, onnx.Shape{cfg.Batch, 3, 224, 224})
	x := b.Input()
	for s := 0; s < 5; s++ {
		for d := 0; d < cfg.Depths[s]; d++ {
			x = b.Relu(b.Conv(x, cfg.Widths[s], cfg.Kernel, 1, cfg.Kernel/2, 1))
		}
		x = b.MaxPool(x, 2, 2, 0)
	}
	x = b.Flatten(x)
	x = b.Dropout(b.Relu(b.Gemm(x, cfg.FCWidth)))
	x = b.Dropout(b.Relu(b.Gemm(x, cfg.FCWidth)))
	x = b.Gemm(x, cfg.NumClasses)
	return b.MustFinish(x)
}

// VGGVariant draws a random kernel-size / channel / depth variant.
func VGGVariant(rng *rand.Rand, batch int) *onnx.Graph {
	cfg := BaseVGG(batch)
	m := widthMult(rng, 0.35, 1.25)
	for i := range cfg.Widths {
		cfg.Widths[i] = scaleCh(cfg.Widths[i], m)
	}
	for i := range cfg.Depths {
		cfg.Depths[i] += rng.Intn(3) - 1 // -1, 0, +1
		if cfg.Depths[i] < 1 {
			cfg.Depths[i] = 1
		}
	}
	cfg.Kernel = pickKernel(rng, 3, 3, 5) // mostly 3x3
	cfg.FCWidth = roundCh(float64(cfg.FCWidth)*widthMult(rng, 0.5, 1.0), 64)
	return BuildVGG(cfg)
}

// inceptionSpec describes one GoogleNet inception module's branch widths.
type inceptionSpec struct {
	c1, c3r, c3, c5r, c5, pp int
}

// GoogleNetConfig parameterizes GoogleNet (Szegedy et al.).
type GoogleNetConfig struct {
	Batch      int
	Modules    []inceptionSpec
	Kernel3    int // kernel of the "3x3" branch
	Kernel5    int // kernel of the "5x5" branch
	NumClasses int
}

// BaseGoogleNet is the canonical 9-module configuration.
func BaseGoogleNet(batch int) GoogleNetConfig {
	return GoogleNetConfig{
		Batch: batch,
		Modules: []inceptionSpec{
			{64, 96, 128, 16, 32, 32},
			{128, 128, 192, 32, 96, 64},
			{192, 96, 208, 16, 48, 64},
			{160, 112, 224, 24, 64, 64},
			{128, 128, 256, 24, 64, 64},
			{112, 144, 288, 32, 64, 64},
			{256, 160, 320, 32, 128, 128},
			{256, 160, 320, 32, 128, 128},
			{384, 192, 384, 48, 128, 128},
		},
		Kernel3:    3,
		Kernel5:    5,
		NumClasses: 1000,
	}
}

func (cfg GoogleNetConfig) inception(b *onnx.Builder, x string, m inceptionSpec) string {
	b1 := b.Relu(b.Conv(x, m.c1, 1, 1, 0, 1))
	b3 := b.Relu(b.Conv(x, m.c3r, 1, 1, 0, 1))
	b3 = b.Relu(b.Conv(b3, m.c3, cfg.Kernel3, 1, cfg.Kernel3/2, 1))
	b5 := b.Relu(b.Conv(x, m.c5r, 1, 1, 0, 1))
	b5 = b.Relu(b.Conv(b5, m.c5, cfg.Kernel5, 1, cfg.Kernel5/2, 1))
	bp := b.MaxPool(x, 3, 1, 1)
	bp = b.Relu(b.Conv(bp, m.pp, 1, 1, 0, 1))
	return b.Concat(b1, b3, b5, bp)
}

// BuildGoogleNet constructs the graph for a configuration.
func BuildGoogleNet(cfg GoogleNetConfig) *onnx.Graph {
	b := onnx.NewBuilder("googlenet", FamilyGoogleNet, onnx.Shape{cfg.Batch, 3, 224, 224})
	x := b.Relu(b.Conv(b.Input(), 64, 7, 2, 3, 1))
	x = b.MaxPool(x, 3, 2, 1)
	x = b.Relu(b.Conv(x, 64, 1, 1, 0, 1))
	x = b.Relu(b.Conv(x, 192, 3, 1, 1, 1))
	x = b.MaxPool(x, 3, 2, 1)
	for i, m := range cfg.Modules {
		x = cfg.inception(b, x, m)
		if i == 1 || i == 6 {
			x = b.MaxPool(x, 3, 2, 1)
		}
	}
	x = b.GlobalAveragePool(x)
	x = b.Flatten(x)
	x = b.Dropout(x)
	x = b.Gemm(x, cfg.NumClasses)
	return b.MustFinish(x)
}

// GoogleNetVariant draws a random branch-width / kernel variant.
func GoogleNetVariant(rng *rand.Rand, batch int) *onnx.Graph {
	cfg := BaseGoogleNet(batch)
	m := widthMult(rng, 0.5, 1.5)
	for i := range cfg.Modules {
		s := &cfg.Modules[i]
		s.c1 = scaleCh(s.c1, m)
		s.c3r = scaleCh(s.c3r, m)
		s.c3 = scaleCh(s.c3, m)
		s.c5r = scaleCh(s.c5r, m)
		s.c5 = scaleCh(s.c5, m)
		s.pp = scaleCh(s.pp, m)
	}
	cfg.Kernel3 = pickKernel(rng, 3, 3, 5)
	cfg.Kernel5 = pickKernel(rng, 3, 5, 5, 7)
	return BuildGoogleNet(cfg)
}

// SqueezeNetConfig parameterizes SqueezeNet (Iandola et al.).
type SqueezeNetConfig struct {
	Batch        int
	Squeeze      [8]int
	Expand       [8]int // per fire module, each of the two expand branches
	ExpandKernel int
	NumClasses   int
}

// BaseSqueezeNet is SqueezeNet v1.1.
func BaseSqueezeNet(batch int) SqueezeNetConfig {
	return SqueezeNetConfig{
		Batch:        batch,
		Squeeze:      [8]int{16, 16, 32, 32, 48, 48, 64, 64},
		Expand:       [8]int{64, 64, 128, 128, 192, 192, 256, 256},
		ExpandKernel: 3,
		NumClasses:   1000,
	}
}

// BuildSqueezeNet constructs the graph for a configuration.
func BuildSqueezeNet(cfg SqueezeNetConfig) *onnx.Graph {
	b := onnx.NewBuilder("squeezenet", FamilySqueezeNet, onnx.Shape{cfg.Batch, 3, 224, 224})
	fire := func(x string, sq, ex int) string {
		s := b.Relu(b.Conv(x, sq, 1, 1, 0, 1))
		e1 := b.Relu(b.Conv(s, ex, 1, 1, 0, 1))
		e3 := b.Relu(b.Conv(s, ex, cfg.ExpandKernel, 1, cfg.ExpandKernel/2, 1))
		return b.Concat(e1, e3)
	}
	x := b.Relu(b.Conv(b.Input(), 64, 3, 2, 1, 1))
	x = b.MaxPool(x, 3, 2, 0)
	x = fire(x, cfg.Squeeze[0], cfg.Expand[0])
	x = fire(x, cfg.Squeeze[1], cfg.Expand[1])
	x = b.MaxPool(x, 3, 2, 0)
	x = fire(x, cfg.Squeeze[2], cfg.Expand[2])
	x = fire(x, cfg.Squeeze[3], cfg.Expand[3])
	x = b.MaxPool(x, 3, 2, 0)
	for i := 4; i < 8; i++ {
		x = fire(x, cfg.Squeeze[i], cfg.Expand[i])
	}
	x = b.Dropout(x)
	x = b.Relu(b.Conv(x, cfg.NumClasses, 1, 1, 0, 1))
	x = b.GlobalAveragePool(x)
	x = b.Flatten(x)
	return b.MustFinish(x)
}

// SqueezeNetVariant draws a random fire-module variant.
func SqueezeNetVariant(rng *rand.Rand, batch int) *onnx.Graph {
	cfg := BaseSqueezeNet(batch)
	m := widthMult(rng, 0.5, 2.0)
	for i := range cfg.Squeeze {
		cfg.Squeeze[i] = scaleCh(cfg.Squeeze[i], m)
		cfg.Expand[i] = scaleCh(cfg.Expand[i], m)
	}
	cfg.ExpandKernel = pickKernel(rng, 3, 3, 5)
	return BuildSqueezeNet(cfg)
}
