package models

import (
	"math/rand"

	"nnlqp/internal/onnx"
)

// OFASpec is one sub-network drawn from a Once-for-All-style MobileNetV2
// supernet: per-stage depth, kernel size and expansion ratio, plus input
// resolution (Fig. 9's 1,000-sample NAS experiment).
type OFASpec struct {
	Batch      int
	Resolution int
	Depths     [5]int // blocks per stage, 2..4
	Kernels    [5]int // 3, 5 or 7
	Expands    [5]int // 3, 4 or 6
}

// ofaStageOut are the fixed stage output widths of the supernet.
var ofaStageOut = [5]int{24, 40, 80, 112, 160}

// ofaStageStride are the per-stage strides.
var ofaStageStride = [5]int{2, 2, 2, 1, 2}

// RandomOFASpec samples a sub-network uniformly from the supernet space.
func RandomOFASpec(rng *rand.Rand, batch int) OFASpec {
	s := OFASpec{Batch: batch}
	s.Resolution = []int{160, 176, 192, 208, 224}[rng.Intn(5)]
	for i := 0; i < 5; i++ {
		s.Depths[i] = 2 + rng.Intn(3)
		s.Kernels[i] = pickKernel(rng, 3, 5, 7)
		s.Expands[i] = pickKernel(rng, 3, 4, 6)
	}
	return s
}

// BuildOFA constructs the sub-network graph for a specification.
func BuildOFA(spec OFASpec) *onnx.Graph {
	b := onnx.NewBuilder("ofa-subnet", FamilyOFA, onnx.Shape{spec.Batch, 3, spec.Resolution, spec.Resolution})
	x := b.ConvBNClip(b.Input(), 16, 3, 2, 1, 1)
	// First fixed block (expand 1).
	x = invertedResidual(b, x, 16, mbStage{Expand: 1, Out: 16, Kernel: 3}, 1)
	inCh := 16
	for s := 0; s < 5; s++ {
		st := mbStage{
			Expand: float64(spec.Expands[s]),
			Out:    ofaStageOut[s],
			Kernel: spec.Kernels[s],
		}
		for d := 0; d < spec.Depths[s]; d++ {
			stride := 1
			if d == 0 {
				stride = ofaStageStride[s]
			}
			x = invertedResidual(b, x, inCh, st, stride)
			inCh = st.Out
		}
	}
	x = b.ConvBNClip(x, 960, 1, 1, 0, 1)
	x = b.GlobalAveragePool(x)
	x = b.Flatten(x)
	x = b.Gemm(x, 1000)
	return b.MustFinish(x)
}

// OFAVariant samples and builds a random sub-network.
func OFAVariant(rng *rand.Rand, batch int) *onnx.Graph {
	return BuildOFA(RandomOFASpec(rng, batch))
}

// SyntheticAccuracy assigns a deterministic pseudo-accuracy to an OFA
// sub-network, playing the role of the paper's accuracy predictor in the
// Fig. 9 Pareto experiment. Larger capacity (more FLOPs, bigger kernels,
// deeper stages, higher resolution) yields higher accuracy with saturating
// returns, plus a small spec-dependent deterministic residual so the
// frontier is not a pure function of FLOPs.
func SyntheticAccuracy(spec OFASpec) float64 {
	capacity := 0.0
	for i := 0; i < 5; i++ {
		capacity += float64(spec.Depths[i]) * float64(spec.Expands[i]) *
			(1.0 + 0.15*float64(spec.Kernels[i]-3)/2.0)
	}
	capacity *= float64(spec.Resolution) / 224.0
	// Saturating accuracy curve around the MobileNet regime (~70-80%).
	acc := 80.0 - 28.0/(1.0+capacity/25.0)
	// Deterministic residual in [-0.4, 0.4] from a cheap spec hash.
	h := uint64(spec.Resolution)
	for i := 0; i < 5; i++ {
		h = h*1000003 + uint64(spec.Depths[i]*100+spec.Kernels[i]*10+spec.Expands[i])
	}
	acc += (float64(h%1000)/1000.0 - 0.5) * 0.8
	return acc
}
