// Package models programmatically constructs the ten model families of the
// NNLQP evaluation (§8.1) — AlexNet, VGG, GoogleNet, ResNet, SqueezeNet,
// MobileNetV2, EfficientNet, MobileNetV3, MnasNet and NASBench201 — plus the
// detection models of Fig. 8 and the OFA-style supernet samples of Fig. 9.
//
// Following the paper's dataset construction ("transform each one to get
// 2,000 variants with various kernel sizes and output channels"), every
// family exposes a deterministic random-variant generator driven by a
// caller-supplied *rand.Rand, so the full 20,000-model dataset is
// reproducible from a single seed.
package models

import (
	"fmt"
	"math/rand"

	"nnlqp/internal/onnx"
)

// Family names as used in the paper's tables.
const (
	FamilyAlexNet      = "AlexNet"
	FamilyVGG          = "VGG"
	FamilyGoogleNet    = "GoogleNet"
	FamilyResNet       = "ResNet"
	FamilySqueezeNet   = "SqueezeNet"
	FamilyMobileNetV2  = "MobileNetV2"
	FamilyEfficientNet = "EfficientNet"
	FamilyMobileNetV3  = "MobileNetV3"
	FamilyMnasNet      = "MnasNet"
	FamilyNasBench201  = "NasBench201"
	FamilyDetection    = "Detection"
	FamilyOFA          = "OFA"
)

// Families lists the ten classification families of Table 3 in paper order.
var Families = []string{
	FamilyResNet, FamilyVGG, FamilyEfficientNet, FamilyMobileNetV2,
	FamilyMobileNetV3, FamilyMnasNet, FamilyAlexNet, FamilySqueezeNet,
	FamilyGoogleNet, FamilyNasBench201,
}

// roundCh rounds a scaled channel count to the nearest multiple of base
// (min base), the standard width-multiplier convention.
func roundCh(c float64, base int) int {
	v := int(c/float64(base)+0.5) * base
	if v < base {
		v = base
	}
	return v
}

// scaleCh applies a width multiplier with multiple-of-8 rounding.
func scaleCh(c int, mult float64) int { return roundCh(float64(c)*mult, 8) }

// pickKernel draws a kernel size from choices.
func pickKernel(rng *rand.Rand, choices ...int) int {
	return choices[rng.Intn(len(choices))]
}

// widthMult draws a width multiplier in [lo, hi].
func widthMult(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

// Variant builds a random variant of the named family at the given batch
// size, using rng for all stochastic choices.
func Variant(family string, rng *rand.Rand, batch int) (*onnx.Graph, error) {
	switch family {
	case FamilyAlexNet:
		return AlexNetVariant(rng, batch), nil
	case FamilyVGG:
		return VGGVariant(rng, batch), nil
	case FamilyGoogleNet:
		return GoogleNetVariant(rng, batch), nil
	case FamilyResNet:
		return ResNetVariant(rng, batch), nil
	case FamilySqueezeNet:
		return SqueezeNetVariant(rng, batch), nil
	case FamilyMobileNetV2:
		return MobileNetV2Variant(rng, batch), nil
	case FamilyEfficientNet:
		return EfficientNetVariant(rng, batch), nil
	case FamilyMobileNetV3:
		return MobileNetV3Variant(rng, batch), nil
	case FamilyMnasNet:
		return MnasNetVariant(rng, batch), nil
	case FamilyNasBench201:
		return NasBench201Variant(rng, batch), nil
	case FamilyDetection:
		return DetectionVariant(rng, batch), nil
	case FamilyOFA:
		return OFAVariant(rng, batch), nil
	default:
		return nil, fmt.Errorf("models: unknown family %q", family)
	}
}

// Sample describes one dataset entry: a model graph awaiting latency
// measurement on some platform.
type Sample struct {
	Graph  *onnx.Graph
	Family string
}

// BuildDataset generates perFamily variants of each listed family with a
// deterministic seed, mirroring the paper's 20,000-model dataset
// construction (perFamily=2000 over the ten families).
func BuildDataset(families []string, perFamily int, seed int64, batch int) ([]Sample, error) {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sample, 0, len(families)*perFamily)
	for _, fam := range families {
		for i := 0; i < perFamily; i++ {
			g, err := Variant(fam, rng, batch)
			if err != nil {
				return nil, err
			}
			g.Name = fmt.Sprintf("%s-%04d", fam, i)
			out = append(out, Sample{Graph: g, Family: fam})
		}
	}
	return out, nil
}
