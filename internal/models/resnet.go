package models

import (
	"math/rand"

	"nnlqp/internal/onnx"
)

// ResNetConfig parameterizes the ResNet family (He et al.) with basic
// residual blocks.
type ResNetConfig struct {
	Batch      int
	Widths     [4]int
	Depths     [4]int
	Kernel     int
	NumClasses int
}

// BaseResNet is ResNet-18.
func BaseResNet(batch int) ResNetConfig {
	return ResNetConfig{
		Batch:      batch,
		Widths:     [4]int{64, 128, 256, 512},
		Depths:     [4]int{2, 2, 2, 2},
		Kernel:     3,
		NumClasses: 1000,
	}
}

// ResNet34 is the deeper basic-block configuration used as the detection
// backbone in Fig. 8.
func ResNet34(batch int) ResNetConfig {
	cfg := BaseResNet(batch)
	cfg.Depths = [4]int{3, 4, 6, 3}
	return cfg
}

// basicBlock appends one residual basic block and returns its output,
// together with the updated current channel count.
func basicBlock(b *onnx.Builder, x string, inCh, outCh, stride, kernel int) string {
	identity := x
	y := b.ConvBNRelu(x, outCh, kernel, stride, kernel/2, 1)
	y = b.BatchNorm(b.Conv(y, outCh, kernel, 1, kernel/2, 1))
	if stride != 1 || inCh != outCh {
		identity = b.BatchNorm(b.Conv(x, outCh, 1, stride, 0, 1))
	}
	return b.Relu(b.AddTensors(y, identity))
}

// BuildResNet constructs the graph for a configuration; stemAndHead controls
// whether the classifier head is attached (the detection builder reuses the
// trunk without it).
func BuildResNet(cfg ResNetConfig) *onnx.Graph {
	b := onnx.NewBuilder("resnet", FamilyResNet, onnx.Shape{cfg.Batch, 3, 224, 224})
	x := buildResNetTrunk(b, cfg)
	x = b.GlobalAveragePool(x)
	x = b.Flatten(x)
	x = b.Gemm(x, cfg.NumClasses)
	return b.MustFinish(x)
}

// buildResNetTrunk appends the stem and the four residual stages, returning
// the final feature map.
func buildResNetTrunk(b *onnx.Builder, cfg ResNetConfig) string {
	x := b.ConvBNRelu(b.Input(), cfg.Widths[0], 7, 2, 3, 1)
	x = b.MaxPool(x, 3, 2, 1)
	inCh := cfg.Widths[0]
	for s := 0; s < 4; s++ {
		for d := 0; d < cfg.Depths[s]; d++ {
			stride := 1
			if d == 0 && s > 0 {
				stride = 2
			}
			x = basicBlock(b, x, inCh, cfg.Widths[s], stride, cfg.Kernel)
			inCh = cfg.Widths[s]
		}
	}
	return x
}

// ResNetVariant draws a random width / depth / kernel variant.
func ResNetVariant(rng *rand.Rand, batch int) *onnx.Graph {
	cfg := BaseResNet(batch)
	m := widthMult(rng, 0.4, 1.5)
	for i := range cfg.Widths {
		cfg.Widths[i] = scaleCh(cfg.Widths[i], m)
	}
	for i := range cfg.Depths {
		cfg.Depths[i] = 1 + rng.Intn(3) // 1..3
	}
	cfg.Kernel = pickKernel(rng, 3, 3, 5)
	return BuildResNet(cfg)
}
