package models

import (
	"math/rand"

	"nnlqp/internal/onnx"
)

// DetectionConfig parameterizes a RetinaNet-style single-stage detector:
// a ResNet backbone, lateral 1×1 feature-pyramid projections on the last
// three stages, and convolutional classification/regression towers on each
// level (Fig. 8's detection task). The top-down upsampling path of a true
// FPN has no counterpart in our operator set; the multi-scale head towers,
// which dominate detector latency relative to the classifier head, are
// preserved. See DESIGN.md substitution notes.
type DetectionConfig struct {
	Batch      int
	Backbone   ResNetConfig
	FPNCh      int
	TowerDepth int
	NumAnchors int
	NumClasses int
}

// BaseDetection is RetinaNet with a ResNet-34 backbone, the configuration
// Fig. 8 references.
func BaseDetection(batch int) DetectionConfig {
	return DetectionConfig{
		Batch:      batch,
		Backbone:   ResNet34(batch),
		FPNCh:      256,
		TowerDepth: 4,
		NumAnchors: 9,
		NumClasses: 80,
	}
}

// BuildDetection constructs the detector graph. The graph has six outputs:
// a classification and a box-regression map per pyramid level.
func BuildDetection(cfg DetectionConfig) *onnx.Graph {
	bb := cfg.Backbone
	b := onnx.NewBuilder("retinanet", FamilyDetection, onnx.Shape{cfg.Batch, 3, 224, 224})

	// Backbone trunk, capturing the outputs of stages 2..4 (C3, C4, C5).
	x := b.ConvBNRelu(b.Input(), bb.Widths[0], 7, 2, 3, 1)
	x = b.MaxPool(x, 3, 2, 1)
	inCh := bb.Widths[0]
	var pyramids []string
	for s := 0; s < 4; s++ {
		for d := 0; d < bb.Depths[s]; d++ {
			stride := 1
			if d == 0 && s > 0 {
				stride = 2
			}
			x = basicBlock(b, x, inCh, bb.Widths[s], stride, bb.Kernel)
			inCh = bb.Widths[s]
		}
		if s >= 1 {
			pyramids = append(pyramids, x)
		}
	}

	tower := func(p string) string {
		for i := 0; i < cfg.TowerDepth; i++ {
			p = b.Relu(b.Conv(p, cfg.FPNCh, 3, 1, 1, 1))
		}
		return p
	}

	var outputs []string
	for _, p := range pyramids {
		lat := b.Relu(b.Conv(p, cfg.FPNCh, 1, 1, 0, 1))
		cls := b.Conv(tower(lat), cfg.NumAnchors*cfg.NumClasses, 3, 1, 1, 1)
		box := b.Conv(tower(lat), cfg.NumAnchors*4, 3, 1, 1, 1)
		outputs = append(outputs, b.Sigmoid(cls), box)
	}
	return b.MustFinish(outputs...)
}

// DetectionVariant draws a random detector: backbone widths/depths and
// head width/depth vary as a detection-NAS space would.
func DetectionVariant(rng *rand.Rand, batch int) *onnx.Graph {
	cfg := BaseDetection(batch)
	m := widthMult(rng, 0.5, 1.25)
	for i := range cfg.Backbone.Widths {
		cfg.Backbone.Widths[i] = scaleCh(cfg.Backbone.Widths[i], m)
	}
	for i := range cfg.Backbone.Depths {
		cfg.Backbone.Depths[i] = 1 + rng.Intn(4)
	}
	cfg.FPNCh = scaleCh(cfg.FPNCh, widthMult(rng, 0.5, 1.25))
	cfg.TowerDepth = 2 + rng.Intn(3)
	return BuildDetection(cfg)
}
