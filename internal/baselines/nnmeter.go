package baselines

import (
	"fmt"
	"math"

	"nnlqp/internal/hwsim"
	"nnlqp/internal/kernels"
	"nnlqp/internal/onnx"
)

// NNMeter reproduces the nn-Meter baseline (Zhang et al., MobiSys'21) as
// the paper applies it: a random-forest regressor per kernel family over
// engineered kernel features predicts each kernel's standalone latency;
// the model's latency is the sum of kernel predictions, passed through a
// linear correction fitted on whole-model samples because the additivity
// assumption is unreliable (Appendix E: "we apply the linear regression
// method to correct the summation result").
type NNMeter struct {
	platform *hwsim.Platform
	cfg      RFConfig
	forests  map[string]*RandomForest
	global   *RandomForest // fallback for families unseen in kernel training
	correct  *LinReg
}

// NewNNMeter creates the baseline for a target platform.
func NewNNMeter(platform *hwsim.Platform, cfg RFConfig) *NNMeter {
	return &NNMeter{platform: platform, cfg: cfg, forests: make(map[string]*RandomForest)}
}

// Name implements Predictor.
func (m *NNMeter) Name() string { return "nn-Meter" }

// FitKernels trains the per-family forests from a kernel dataset (as built
// by kernels.Dataset). Latencies are learned in log space for scale
// robustness.
func (m *NNMeter) FitKernels(ds map[string][]kernels.Sample) error {
	var allX [][]float64
	var allY []float64
	for fam, ss := range ds {
		if len(ss) == 0 {
			continue
		}
		x := make([][]float64, len(ss))
		y := make([]float64, len(ss))
		for i, s := range ss {
			x[i] = s.Features
			y[i] = math.Log(math.Max(s.LatencyMS, 1e-9))
			allX = append(allX, s.Features)
			allY = append(allY, y[i])
		}
		cfg := m.cfg
		cfg.Seed = m.cfg.Seed + int64(len(fam)) // decorrelate per family
		m.forests[fam] = FitRandomForest(x, y, cfg)
	}
	if len(allX) == 0 {
		return fmt.Errorf("baselines: empty kernel dataset")
	}
	m.global = FitRandomForest(allX, allY, m.cfg)
	return nil
}

// predictKernelSum predicts the summed standalone kernel latency of g.
func (m *NNMeter) predictKernelSum(g *onnx.Graph) (float64, error) {
	ks, err := kernels.Split(g, m.platform)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, s := range ks {
		f, ok := m.forests[s.Family]
		if !ok {
			f = m.global
		}
		if f == nil {
			return 0, fmt.Errorf("baselines: nn-Meter kernels not fitted")
		}
		sum += math.Exp(f.Predict(s.Features))
	}
	return sum, nil
}

// Fit fits the linear sum→model correction on whole-model samples. The
// kernel forests must have been trained first.
func (m *NNMeter) Fit(train []ModelSample) error {
	if m.global == nil {
		return fmt.Errorf("baselines: call FitKernels before Fit")
	}
	x := make([][]float64, 0, len(train))
	y := make([]float64, 0, len(train))
	for _, s := range train {
		sum, err := m.predictKernelSum(s.Graph)
		if err != nil {
			return err
		}
		x = append(x, []float64{sum})
		y = append(y, s.LatencyMS)
	}
	reg, err := FitLinReg(x, y, 1e-9)
	if err != nil {
		return err
	}
	m.correct = reg
	return nil
}

// Predict implements Predictor.
func (m *NNMeter) Predict(g *onnx.Graph) (float64, error) {
	sum, err := m.predictKernelSum(g)
	if err != nil {
		return 0, err
	}
	if m.correct == nil {
		return sum, nil
	}
	return m.correct.Predict([]float64{sum}), nil
}

// PredictKernel predicts one kernel sample's standalone latency (Table 5).
func (m *NNMeter) PredictKernel(s kernels.Sample) (float64, error) {
	f, ok := m.forests[s.Family]
	if !ok {
		f = m.global
	}
	if f == nil {
		return 0, fmt.Errorf("baselines: nn-Meter kernels not fitted")
	}
	return math.Exp(f.Predict(s.Features)), nil
}
