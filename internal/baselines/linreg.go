package baselines

import (
	"fmt"
	"math"
)

// LinReg is ordinary least squares with an intercept and a small ridge
// term for conditioning, solved by Gaussian elimination on the normal
// equations — adequate for the ≤3-feature regressions the baselines use.
type LinReg struct {
	Weights   []float64 // per-feature
	Intercept float64
	Ridge     float64
}

// FitLinReg fits y ≈ X·w + b.
func FitLinReg(x [][]float64, y []float64, ridge float64) (*LinReg, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("baselines: linreg needs equal, nonempty X and y")
	}
	d := len(x[0]) + 1 // + intercept
	// Build normal equations A·w = b with the intercept as the last column.
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d+1)
	}
	row := make([]float64, d)
	for n := range x {
		if len(x[n]) != d-1 {
			return nil, fmt.Errorf("baselines: ragged design matrix")
		}
		copy(row, x[n])
		row[d-1] = 1
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				a[i][j] += row[i] * row[j]
			}
			a[i][d] += row[i] * y[n]
		}
	}
	for i := 0; i < d-1; i++ {
		a[i][i] += ridge
	}
	w, err := solve(a)
	if err != nil {
		return nil, err
	}
	return &LinReg{Weights: w[:d-1], Intercept: w[d-1], Ridge: ridge}, nil
}

// solve performs Gaussian elimination with partial pivoting on the
// augmented matrix a (d rows, d+1 cols).
func solve(a [][]float64) ([]float64, error) {
	d := len(a)
	for col := 0; col < d; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < d; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		if math.Abs(a[p][col]) < 1e-12 {
			return nil, fmt.Errorf("baselines: singular system")
		}
		a[col], a[p] = a[p], a[col]
		// Eliminate below.
		for r := col + 1; r < d; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= d; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	w := make([]float64, d)
	for r := d - 1; r >= 0; r-- {
		s := a[r][d]
		for c := r + 1; c < d; c++ {
			s -= a[r][c] * w[c]
		}
		w[r] = s / a[r][r]
	}
	return w, nil
}

// Predict evaluates the fitted regression.
func (l *LinReg) Predict(features []float64) float64 {
	s := l.Intercept
	for i, w := range l.Weights {
		s += w * features[i]
	}
	return s
}
