// Package baselines implements the latency predictors NNLP is compared
// against in Table 3 and Table 5 (paper §8.3, Appendix E):
//
//   - FLOPs / FLOPs+MAC: linear regression on global statistics.
//   - nn-Meter: per-kernel-family random-forest regression over engineered
//     kernel features, kernel latencies summed and then linearly corrected
//     (the correction compensating the unreliable additivity assumption).
//   - TPU: per-kernel GraphSAGE latency prediction, summed and linearly
//     corrected.
//   - BRP-NAS: a GCN over the whole graph's node features, without static
//     features (the official backbone applied to NNLP's node features, as
//     Appendix E describes).
package baselines

import (
	"fmt"

	"nnlqp/internal/onnx"
)

// ModelSample is one whole-model training/evaluation record.
type ModelSample struct {
	Graph     *onnx.Graph
	LatencyMS float64
}

// Predictor is the common interface all baselines (and NNLP adapters)
// satisfy for the comparison experiments.
type Predictor interface {
	Name() string
	// Fit trains on whole-model samples.
	Fit(train []ModelSample) error
	// Predict returns the predicted latency in milliseconds.
	Predict(g *onnx.Graph) (float64, error)
}

// Evaluate computes (truths, preds) for a fitted predictor on a test set.
func Evaluate(p Predictor, test []ModelSample) (truths, preds []float64, err error) {
	for _, s := range test {
		v, err := p.Predict(s.Graph)
		if err != nil {
			return nil, nil, fmt.Errorf("baselines: %s predict: %w", p.Name(), err)
		}
		truths = append(truths, s.LatencyMS)
		preds = append(preds, v)
	}
	return truths, preds, nil
}
