package baselines

import (
	"fmt"
	"math"
	"sync"

	"nnlqp/internal/core"
	"nnlqp/internal/hwsim"
	"nnlqp/internal/kernels"
	"nnlqp/internal/onnx"
	"nnlqp/internal/train"
)

// TPU reproduces the learned-TPU-cost-model baseline (Kaufman et al.) as
// the paper applies it: "we first use GraphSAGE to predict the latency of
// kernels. The same as nn-Meter, we correct the sum of kernel latencies by
// the linear regression method" (Appendix E). The kernel-level GraphSAGE
// is our own unified-embedding predictor applied to standalone kernel
// graphs.
type TPU struct {
	platform *hwsim.Platform
	cfg      core.Config
	kernelP  *core.Predictor
	correct  *LinReg
}

// NewTPU creates the baseline for a target platform. cfg sizes the
// kernel-level GraphSAGE.
func NewTPU(platform *hwsim.Platform, cfg core.Config) *TPU {
	return &TPU{platform: platform, cfg: cfg}
}

// Name implements Predictor.
func (t *TPU) Name() string { return "TPU" }

// kernelPlatformTag labels the kernel-level head.
const kernelPlatformTag = "kernel"

// FitKernels trains the kernel-level GraphSAGE on a kernel dataset.
func (t *TPU) FitKernels(ds map[string][]kernels.Sample) error {
	var samples []core.Sample
	for _, ss := range ds {
		for _, s := range ss {
			cs, err := core.NewSample(s.Graph, s.LatencyMS, kernelPlatformTag)
			if err != nil {
				return err
			}
			samples = append(samples, cs)
		}
	}
	if len(samples) == 0 {
		return fmt.Errorf("baselines: empty kernel dataset")
	}
	t.kernelP = core.New(t.cfg)
	return t.kernelP.Fit(samples)
}

// predictKernelSum sums predicted standalone kernel latencies for g.
func (t *TPU) predictKernelSum(g *onnx.Graph) (float64, error) {
	if t.kernelP == nil {
		return 0, fmt.Errorf("baselines: call FitKernels before predicting")
	}
	shapes, err := g.InferShapes()
	if err != nil {
		return 0, err
	}
	ks, err := hwsim.Kernelize(g)
	if err != nil {
		return 0, err
	}
	// Kernel predictions are independent: fan out, then sum in index order
	// so the result does not depend on scheduling.
	vals := make([]float64, len(ks))
	var mu sync.Mutex
	var firstErr error
	train.ParallelFor(t.cfg.Workers, len(ks), func(_, i int) {
		kg, err := kernels.KernelGraph(ks[i], shapes, fmt.Sprintf("%s/k%03d", g.Name, i))
		if err == nil {
			vals[i], err = t.kernelP.Predict(kg, kernelPlatformTag)
		}
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
	})
	if firstErr != nil {
		return 0, firstErr
	}
	var sum float64
	for _, v := range vals {
		sum += math.Max(v, 0)
	}
	return sum, nil
}

// Fit fits the linear sum→model correction on whole-model samples.
func (t *TPU) Fit(samples []ModelSample) error {
	x := make([][]float64, 0, len(samples))
	y := make([]float64, 0, len(samples))
	for _, s := range samples {
		sum, err := t.predictKernelSum(s.Graph)
		if err != nil {
			return err
		}
		x = append(x, []float64{sum})
		y = append(y, s.LatencyMS)
	}
	reg, err := FitLinReg(x, y, 1e-9)
	if err != nil {
		return err
	}
	t.correct = reg
	return nil
}

// Predict implements Predictor.
func (t *TPU) Predict(g *onnx.Graph) (float64, error) {
	sum, err := t.predictKernelSum(g)
	if err != nil {
		return 0, err
	}
	if t.correct == nil {
		return sum, nil
	}
	return t.correct.Predict([]float64{sum}), nil
}

// PredictKernel predicts one kernel sample's standalone latency (Table 5).
func (t *TPU) PredictKernel(s kernels.Sample) (float64, error) {
	if t.kernelP == nil {
		return 0, fmt.Errorf("baselines: call FitKernels before predicting")
	}
	return t.kernelP.Predict(s.Graph, kernelPlatformTag)
}
