package baselines

import (
	"fmt"

	"nnlqp/internal/onnx"
)

// FLOPs predicts latency by linear regression on the model's FLOP count
// alone — the classical proxy the paper shows correlates poorly with real
// latency.
type FLOPs struct {
	reg *LinReg
}

// Name implements Predictor.
func (f *FLOPs) Name() string { return "FLOPs" }

func flopsFeature(g *onnx.Graph) ([]float64, error) {
	c, err := g.Cost(4)
	if err != nil {
		return nil, err
	}
	return []float64{float64(c.FLOPs) / 1e9}, nil
}

// Fit implements Predictor.
func (f *FLOPs) Fit(train []ModelSample) error {
	x := make([][]float64, 0, len(train))
	y := make([]float64, 0, len(train))
	for _, s := range train {
		feat, err := flopsFeature(s.Graph)
		if err != nil {
			return err
		}
		x = append(x, feat)
		y = append(y, s.LatencyMS)
	}
	reg, err := FitLinReg(x, y, 1e-9)
	if err != nil {
		return err
	}
	f.reg = reg
	return nil
}

// Predict implements Predictor.
func (f *FLOPs) Predict(g *onnx.Graph) (float64, error) {
	if f.reg == nil {
		return 0, fmt.Errorf("baselines: FLOPs not fitted")
	}
	feat, err := flopsFeature(g)
	if err != nil {
		return 0, err
	}
	return f.reg.Predict(feat), nil
}

// FLOPsMAC adds memory-access bytes as a second regressor (the FLOPs+MAC
// baseline, which Table 3 shows helps substantially over FLOPs alone).
type FLOPsMAC struct {
	reg *LinReg
}

// Name implements Predictor.
func (f *FLOPsMAC) Name() string { return "FLOPs+MAC" }

func flopsMACFeature(g *onnx.Graph) ([]float64, error) {
	c, err := g.Cost(4)
	if err != nil {
		return nil, err
	}
	return []float64{float64(c.FLOPs) / 1e9, float64(c.MAC) / 1e9}, nil
}

// Fit implements Predictor.
func (f *FLOPsMAC) Fit(train []ModelSample) error {
	x := make([][]float64, 0, len(train))
	y := make([]float64, 0, len(train))
	for _, s := range train {
		feat, err := flopsMACFeature(s.Graph)
		if err != nil {
			return err
		}
		x = append(x, feat)
		y = append(y, s.LatencyMS)
	}
	reg, err := FitLinReg(x, y, 1e-9)
	if err != nil {
		return err
	}
	f.reg = reg
	return nil
}

// Predict implements Predictor.
func (f *FLOPsMAC) Predict(g *onnx.Graph) (float64, error) {
	if f.reg == nil {
		return 0, fmt.Errorf("baselines: FLOPs+MAC not fitted")
	}
	feat, err := flopsMACFeature(g)
	if err != nil {
		return 0, err
	}
	return f.reg.Predict(feat), nil
}
