package baselines

import (
	"math"
	"math/rand"
	"sort"
)

// Random-forest regression from scratch: CART trees with variance-reduction
// splits, bootstrap bagging and per-split feature subsampling — the
// regressor nn-Meter uses for kernel latency prediction.

// treeNode is one node of a regression tree.
type treeNode struct {
	feature  int
	thresh   float64
	left     *treeNode
	right    *treeNode
	value    float64 // leaf prediction
	isLeaf   bool
	examples int
}

// RFConfig controls forest construction.
type RFConfig struct {
	Trees       int
	MaxDepth    int
	MinLeaf     int
	FeatureFrac float64 // fraction of features considered per split
	Seed        int64
}

// DefaultRFConfig mirrors typical nn-Meter settings at a size that trains
// instantly.
func DefaultRFConfig() RFConfig {
	return RFConfig{Trees: 40, MaxDepth: 12, MinLeaf: 2, FeatureFrac: 0.7, Seed: 1}
}

// RandomForest is a bagged ensemble of regression trees.
type RandomForest struct {
	cfg   RFConfig
	trees []*treeNode
}

// FitRandomForest trains a forest on (x, y).
func FitRandomForest(x [][]float64, y []float64, cfg RFConfig) *RandomForest {
	rf := &RandomForest{cfg: cfg}
	if len(x) == 0 {
		return rf
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := len(x)
	for t := 0; t < cfg.Trees; t++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		rf.trees = append(rf.trees, buildTree(x, y, idx, cfg, rng, 0))
	}
	return rf
}

// Predict averages the trees.
func (rf *RandomForest) Predict(features []float64) float64 {
	if len(rf.trees) == 0 {
		return 0
	}
	var s float64
	for _, t := range rf.trees {
		s += t.predict(features)
	}
	return s / float64(len(rf.trees))
}

func (n *treeNode) predict(f []float64) float64 {
	for !n.isLeaf {
		if f[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

func mean(y []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func buildTree(x [][]float64, y []float64, idx []int, cfg RFConfig, rng *rand.Rand, depth int) *treeNode {
	node := &treeNode{examples: len(idx)}
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf || pure(y, idx) {
		node.isLeaf = true
		node.value = mean(y, idx)
		return node
	}
	bestFeat, bestThresh, bestScore := -1, 0.0, math.Inf(1)
	numFeat := len(x[0])
	nTry := int(math.Ceil(cfg.FeatureFrac * float64(numFeat)))
	perm := rng.Perm(numFeat)[:nTry]
	vals := make([]float64, len(idx))
	for _, f := range perm {
		for k, i := range idx {
			vals[k] = x[i][f]
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		// Candidate thresholds: midpoints between distinct sorted values.
		for k := 1; k < len(sorted); k++ {
			if sorted[k] == sorted[k-1] {
				continue
			}
			th := (sorted[k] + sorted[k-1]) / 2
			score := splitScore(x, y, idx, f, th, cfg.MinLeaf)
			if score < bestScore {
				bestScore, bestFeat, bestThresh = score, f, th
			}
		}
	}
	if bestFeat < 0 {
		node.isLeaf = true
		node.value = mean(y, idx)
		return node
	}
	var li, ri []int
	for _, i := range idx {
		if x[i][bestFeat] <= bestThresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	node.feature = bestFeat
	node.thresh = bestThresh
	node.left = buildTree(x, y, li, cfg, rng, depth+1)
	node.right = buildTree(x, y, ri, cfg, rng, depth+1)
	return node
}

func pure(y []float64, idx []int) bool {
	for _, i := range idx[1:] {
		if y[i] != y[idx[0]] {
			return false
		}
	}
	return true
}

// splitScore is the weighted sum of child variances (lower = better), or
// +Inf when a child would violate MinLeaf.
func splitScore(x [][]float64, y []float64, idx []int, feat int, th float64, minLeaf int) float64 {
	var ln, rn int
	var ls, rs, lq, rq float64
	for _, i := range idx {
		if x[i][feat] <= th {
			ln++
			ls += y[i]
			lq += y[i] * y[i]
		} else {
			rn++
			rs += y[i]
			rq += y[i] * y[i]
		}
	}
	if ln < minLeaf || rn < minLeaf {
		return math.Inf(1)
	}
	lv := lq - ls*ls/float64(ln)
	rv := rq - rs*rs/float64(rn)
	return lv + rv
}
