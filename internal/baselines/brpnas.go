package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"nnlqp/internal/feats"
	"nnlqp/internal/gnn"
	"nnlqp/internal/onnx"
	"nnlqp/internal/tensor"
)

// BRPNAS reproduces the BRP-NAS predictor (Dudziak et al., NeurIPS'20) as
// the paper applies it (Appendix E): the official GCN backbone driven by
// NNLP's node features and topology, without the static graph features.
// Layers compute H' = ReLU(Â·H·W) with the symmetric-normalized adjacency
// (self loops included); readout is mean pooling followed by a linear head.
type BRPNAS struct {
	cfg     BRPNASConfig
	layers  []*gcnLayer
	headW   *tensor.Param
	headB   *tensor.Param
	norm    *feats.Normalizer
	tgtMean float64
	tgtStd  float64
	rng     *rand.Rand
	fitted  bool
}

// BRPNASConfig sizes the GCN.
type BRPNASConfig struct {
	Hidden    int
	Depth     int
	LR        float64
	Epochs    int
	BatchSize int
	Seed      int64
}

// DefaultBRPNASConfig mirrors the official 4-layer GCN at test-friendly
// size.
func DefaultBRPNASConfig() BRPNASConfig {
	return BRPNASConfig{Hidden: 48, Depth: 4, LR: 1e-3, Epochs: 30, BatchSize: 16, Seed: 1}
}

type gcnLayer struct {
	w *tensor.Param
}

type gcnCache struct {
	in   *tensor.Matrix // layer input H
	agg  *tensor.Matrix // Â·H
	mask []bool         // relu mask
	adj  [][]int
	deg  []float64
}

// NewBRPNAS allocates the predictor.
func NewBRPNAS(cfg BRPNASConfig) *BRPNAS {
	b := &BRPNAS{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	in := feats.FeatureDim
	for i := 0; i < cfg.Depth; i++ {
		l := &gcnLayer{w: tensor.NewParam(fmt.Sprintf("gcn%d.W", i), in, cfg.Hidden)}
		l.w.Value.XavierInit(b.rng)
		b.layers = append(b.layers, l)
		in = cfg.Hidden
	}
	b.headW = tensor.NewParam("head.W", cfg.Hidden, 1)
	b.headW.Value.XavierInit(b.rng)
	b.headB = tensor.NewParam("head.b", 1, 1)
	return b
}

// Name implements Predictor.
func (b *BRPNAS) Name() string { return "BRP-NAS" }

func (b *BRPNAS) params() []*tensor.Param {
	ps := []*tensor.Param{b.headW, b.headB}
	for _, l := range b.layers {
		ps = append(ps, l.w)
	}
	return ps
}

// aggregate computes Â·H with Â = D^-1/2 (A+I) D^-1/2.
func aggregate(h *tensor.Matrix, adj [][]int, deg []float64) *tensor.Matrix {
	out := tensor.NewMatrix(h.Rows, h.Cols)
	for i := 0; i < h.Rows; i++ {
		dst := out.Row(i)
		// Self loop.
		tensor.Axpy(1/deg[i], h.Row(i), dst)
		for _, j := range adj[i] {
			tensor.Axpy(1/math.Sqrt(deg[i]*deg[j]), h.Row(j), dst)
		}
	}
	return out
}

// aggregateBackward routes gradients through Â (symmetric, so the same
// coefficients apply transposed).
func aggregateBackward(d *tensor.Matrix, adj [][]int, deg []float64) *tensor.Matrix {
	out := tensor.NewMatrix(d.Rows, d.Cols)
	for i := 0; i < d.Rows; i++ {
		src := d.Row(i)
		tensor.Axpy(1/deg[i], src, out.Row(i))
		for _, j := range adj[i] {
			tensor.Axpy(1/math.Sqrt(deg[i]*deg[j]), src, out.Row(j))
		}
	}
	return out
}

func degrees(adj [][]int) []float64 {
	deg := make([]float64, len(adj))
	for i, nb := range adj {
		deg[i] = float64(len(nb)) + 1
	}
	return deg
}

// forward runs the GCN + mean pool + linear head on normalized features,
// returning the scalar prediction and caches.
func (b *BRPNAS) forward(gf *feats.GraphFeatures) (float64, []*gcnCache, *tensor.Matrix) {
	deg := degrees(gf.Adj)
	h := gf.X
	caches := make([]*gcnCache, 0, len(b.layers))
	for _, l := range b.layers {
		agg := aggregate(h, gf.Adj, deg)
		y := tensor.MatMul(agg, l.w.Value)
		mask := make([]bool, len(y.Data))
		for i, v := range y.Data {
			if v > 0 {
				mask[i] = true
			} else {
				y.Data[i] = 0
			}
		}
		caches = append(caches, &gcnCache{in: h, agg: agg, mask: mask, adj: gf.Adj, deg: deg})
		h = y
	}
	pooled := gnn.SumPool(h)
	pooled.Scale(1 / float64(h.Rows)) // mean pooling
	pred := tensor.Dot(pooled.Row(0), colVec(b.headW.Value)) + b.headB.Value.At(0, 0)
	return pred, caches, pooled
}

func colVec(m *tensor.Matrix) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, 0)
	}
	return out
}

// backward accumulates gradients for a scalar loss derivative dPred.
func (b *BRPNAS) backward(caches []*gcnCache, pooled *tensor.Matrix, numNodes int, dPred float64) {
	// Head.
	for i := 0; i < b.headW.Value.Rows; i++ {
		b.headW.Grad.Data[i] += dPred * pooled.At(0, i)
	}
	b.headB.Grad.Data[0] += dPred
	dPool := tensor.NewMatrix(1, pooled.Cols)
	for i := range dPool.Row(0) {
		dPool.Row(0)[i] = dPred * b.headW.Value.At(i, 0)
	}
	// Mean pool backward.
	dH := gnn.SumPoolBackward(dPool, numNodes)
	dH.Scale(1 / float64(numNodes))
	// GCN layers in reverse.
	for li := len(b.layers) - 1; li >= 0; li-- {
		l := b.layers[li]
		c := caches[li]
		for i := range dH.Data {
			if !c.mask[i] {
				dH.Data[i] = 0
			}
		}
		l.w.Grad.AddInPlace(tensor.MatMulATB(c.agg, dH))
		dAgg := tensor.MatMulABT(dH, l.w.Value)
		dH = aggregateBackward(dAgg, c.adj, c.deg)
	}
}

// Fit implements Predictor: trains the GCN on log-latency targets with
// Adam.
func (b *BRPNAS) Fit(train []ModelSample) error {
	if len(train) == 0 {
		return fmt.Errorf("baselines: BRP-NAS empty training set")
	}
	gfs := make([]*feats.GraphFeatures, len(train))
	targets := make([]float64, len(train))
	for i, s := range train {
		gf, err := feats.Extract(s.Graph, 4)
		if err != nil {
			return err
		}
		gfs[i] = gf
		targets[i] = math.Log(math.Max(s.LatencyMS, 1e-9))
	}
	b.norm = feats.FitNormalizer(gfs)
	normed := make([]*feats.GraphFeatures, len(gfs))
	for i, gf := range gfs {
		c := gf.Clone()
		b.norm.Apply(c)
		normed[i] = c
	}
	// Target standardization.
	var sum, sq float64
	for _, t := range targets {
		sum += t
		sq += t * t
	}
	b.tgtMean = sum / float64(len(targets))
	b.tgtStd = math.Sqrt(math.Max(sq/float64(len(targets))-b.tgtMean*b.tgtMean, 1e-12))
	if b.tgtStd < 1e-6 {
		b.tgtStd = 1
	}

	opt := tensor.NewAdam(b.cfg.LR)
	idx := make([]int, len(train))
	for i := range idx {
		idx[i] = i
	}
	bs := b.cfg.BatchSize
	if bs <= 0 {
		bs = 16
	}
	for epoch := 0; epoch < b.cfg.Epochs; epoch++ {
		b.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += bs {
			end := start + bs
			if end > len(idx) {
				end = len(idx)
			}
			for _, p := range b.params() {
				p.ZeroGrad()
			}
			inv := 1.0 / float64(end-start)
			for _, si := range idx[start:end] {
				gf := normed[si]
				target := (targets[si] - b.tgtMean) / b.tgtStd
				pred, caches, pooled := b.forward(gf)
				b.backward(caches, pooled, gf.X.Rows, 2*(pred-target)*inv)
			}
			opt.Step(b.params())
		}
	}
	b.fitted = true
	return nil
}

// Predict implements Predictor.
func (b *BRPNAS) Predict(g *onnx.Graph) (float64, error) {
	if !b.fitted {
		return 0, fmt.Errorf("baselines: BRP-NAS not fitted")
	}
	gf, err := feats.Extract(g, 4)
	if err != nil {
		return 0, err
	}
	b.norm.Apply(gf)
	pred, _, _ := b.forward(gf)
	return math.Exp(pred*b.tgtStd + b.tgtMean), nil
}
