package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"nnlqp/internal/feats"
	"nnlqp/internal/gnn"
	"nnlqp/internal/onnx"
	"nnlqp/internal/tensor"
	"nnlqp/internal/train"
)

// BRPNAS reproduces the BRP-NAS predictor (Dudziak et al., NeurIPS'20) as
// the paper applies it (Appendix E): the official GCN backbone driven by
// NNLP's node features and topology, without the static graph features.
// Layers compute H' = ReLU(Â·H·W) with the symmetric-normalized adjacency
// (self loops included); readout is mean pooling followed by a linear head.
type BRPNAS struct {
	cfg     BRPNASConfig
	layers  []*gcnLayer
	headW   *tensor.Param
	headB   *tensor.Param
	norm    *feats.Normalizer
	tgtMean float64
	tgtStd  float64
	rng     *rand.Rand
	fitted  bool
}

// BRPNASConfig sizes the GCN.
type BRPNASConfig struct {
	Hidden    int
	Depth     int
	LR        float64
	Epochs    int
	BatchSize int
	Seed      int64
	// Workers caps the goroutines computing per-sample gradients within a
	// batch (<=0 → GOMAXPROCS). Results are bit-identical for any value.
	Workers int
}

// DefaultBRPNASConfig mirrors the official 4-layer GCN at test-friendly
// size.
func DefaultBRPNASConfig() BRPNASConfig {
	return BRPNASConfig{Hidden: 48, Depth: 4, LR: 1e-3, Epochs: 30, BatchSize: 16, Seed: 1}
}

type gcnLayer struct {
	w *tensor.Param
}

type gcnCache struct {
	in   *tensor.Matrix // layer input H
	agg  *tensor.Matrix // Â·H
	mask []bool         // relu mask
	adj  [][]int
	deg  []float64
}

// NewBRPNAS allocates the predictor.
func NewBRPNAS(cfg BRPNASConfig) *BRPNAS {
	b := &BRPNAS{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	in := feats.FeatureDim
	for i := 0; i < cfg.Depth; i++ {
		l := &gcnLayer{w: tensor.NewParam(fmt.Sprintf("gcn%d.W", i), in, cfg.Hidden)}
		l.w.Value.XavierInit(b.rng)
		b.layers = append(b.layers, l)
		in = cfg.Hidden
	}
	b.headW = tensor.NewParam("head.W", cfg.Hidden, 1)
	b.headW.Value.XavierInit(b.rng)
	b.headB = tensor.NewParam("head.b", 1, 1)
	return b
}

// Name implements Predictor.
func (b *BRPNAS) Name() string { return "BRP-NAS" }

func (b *BRPNAS) params() []*tensor.Param {
	ps := []*tensor.Param{b.headW, b.headB}
	for _, l := range b.layers {
		ps = append(ps, l.w)
	}
	return ps
}

// aggregate computes Â·H with Â = D^-1/2 (A+I) D^-1/2, into a
// scratch-owned matrix (nil allocates).
func aggregate(h *tensor.Matrix, adj [][]int, deg []float64, sc *tensor.Scratch) *tensor.Matrix {
	out := sc.Get(h.Rows, h.Cols)
	for i := 0; i < h.Rows; i++ {
		dst := out.Row(i)
		// Self loop.
		tensor.Axpy(1/deg[i], h.Row(i), dst)
		for _, j := range adj[i] {
			tensor.Axpy(1/math.Sqrt(deg[i]*deg[j]), h.Row(j), dst)
		}
	}
	return out
}

// aggregateBackward routes gradients through Â (symmetric, so the same
// coefficients apply transposed), into a scratch-owned matrix.
func aggregateBackward(d *tensor.Matrix, adj [][]int, deg []float64, sc *tensor.Scratch) *tensor.Matrix {
	out := sc.Get(d.Rows, d.Cols)
	for i := 0; i < d.Rows; i++ {
		src := d.Row(i)
		tensor.Axpy(1/deg[i], src, out.Row(i))
		for _, j := range adj[i] {
			tensor.Axpy(1/math.Sqrt(deg[i]*deg[j]), src, out.Row(j))
		}
	}
	return out
}

func degrees(adj [][]int) []float64 {
	deg := make([]float64, len(adj))
	for i, nb := range adj {
		deg[i] = float64(len(nb)) + 1
	}
	return deg
}

// forward runs the GCN + mean pool + linear head on normalized features,
// returning the scalar prediction and caches. Matrix intermediates come from
// sc (nil allocates); it only reads shared state, so concurrent samples may
// run it against distinct scratch arenas.
func (b *BRPNAS) forward(gf *feats.GraphFeatures, sc *tensor.Scratch) (float64, []*gcnCache, *tensor.Matrix) {
	deg := degrees(gf.Adj)
	h := gf.X
	caches := make([]*gcnCache, 0, len(b.layers))
	for _, l := range b.layers {
		agg := aggregate(h, gf.Adj, deg, sc)
		y := tensor.MatMulInto(sc.Get(agg.Rows, l.w.Value.Cols), agg, l.w.Value)
		mask := make([]bool, len(y.Data))
		for i, v := range y.Data {
			if v > 0 {
				mask[i] = true
			} else {
				y.Data[i] = 0
			}
		}
		caches = append(caches, &gcnCache{in: h, agg: agg, mask: mask, adj: gf.Adj, deg: deg})
		h = y
	}
	pooled := gnn.SumPoolScratch(h, sc)
	pooled.Scale(1 / float64(h.Rows)) // mean pooling
	pred := tensor.Dot(pooled.Row(0), colVec(b.headW.Value)) + b.headB.Value.At(0, 0)
	return pred, caches, pooled
}

func colVec(m *tensor.Matrix) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, 0)
	}
	return out
}

// backward accumulates gradients for a scalar loss derivative dPred, routed
// to gb (nil → Param.Grad), with intermediates drawn from sc.
func (b *BRPNAS) backward(caches []*gcnCache, pooled *tensor.Matrix, numNodes int, dPred float64, gb *tensor.GradBuf, sc *tensor.Scratch) {
	// Head.
	gw := gb.Grad(b.headW)
	for i := 0; i < b.headW.Value.Rows; i++ {
		gw.Data[i] += dPred * pooled.At(0, i)
	}
	gb.Grad(b.headB).Data[0] += dPred
	dPool := sc.Get(1, pooled.Cols)
	for i := range dPool.Row(0) {
		dPool.Row(0)[i] = dPred * b.headW.Value.At(i, 0)
	}
	// Mean pool backward.
	dH := gnn.SumPoolBackwardScratch(dPool, numNodes, sc)
	dH.Scale(1 / float64(numNodes))
	// GCN layers in reverse.
	for li := len(b.layers) - 1; li >= 0; li-- {
		l := b.layers[li]
		c := caches[li]
		for i := range dH.Data {
			if !c.mask[i] {
				dH.Data[i] = 0
			}
		}
		tensor.MatMulATBAdd(gb.Grad(l.w), c.agg, dH)
		dAgg := tensor.MatMulABTInto(sc.Get(dH.Rows, l.w.Value.Rows), dH, l.w.Value)
		dH = aggregateBackward(dAgg, c.adj, c.deg, sc)
	}
}

// Fit implements Predictor: trains the GCN on log-latency targets with Adam
// through the shared train.Trainer (constant LR, no early stop — the
// official recipe).
func (b *BRPNAS) Fit(samples []ModelSample) error {
	if len(samples) == 0 {
		return fmt.Errorf("baselines: BRP-NAS empty training set")
	}
	gfs := make([]*feats.GraphFeatures, len(samples))
	targets := make([]float64, len(samples))
	for i, s := range samples {
		gf, err := feats.Extract(s.Graph, 4)
		if err != nil {
			return err
		}
		gfs[i] = gf
		targets[i] = math.Log(math.Max(s.LatencyMS, 1e-9))
	}
	b.norm = feats.FitNormalizer(gfs)
	normed := make([]*feats.GraphFeatures, len(gfs))
	for i, gf := range gfs {
		c := gf.Clone()
		b.norm.Apply(c)
		normed[i] = c
	}
	// Target standardization.
	var sum, sq float64
	for _, t := range targets {
		sum += t
		sq += t * t
	}
	b.tgtMean = sum / float64(len(targets))
	b.tgtStd = math.Sqrt(math.Max(sq/float64(len(targets))-b.tgtMean*b.tgtMean, 1e-12))
	if b.tgtStd < 1e-6 {
		b.tgtStd = 1
	}

	opt := tensor.NewAdam(b.cfg.LR)
	tcfg := train.Config{
		Epochs: b.cfg.Epochs, BatchSize: b.cfg.BatchSize,
		Workers: b.cfg.Workers, Schedule: train.ConstantLR,
	}
	scratch := make([]*tensor.Scratch, tcfg.WorkerCount())
	for i := range scratch {
		scratch[i] = tensor.NewScratch()
	}
	params := b.params()
	tr := &train.Trainer{
		Cfg: tcfg,
		Opt: opt,
		Hooks: train.Hooks{
			Grad: func(worker, si int, inv float64, gb *tensor.GradBuf, _ *rand.Rand) float64 {
				sc := scratch[worker]
				gf := normed[si]
				target := (targets[si] - b.tgtMean) / b.tgtStd
				pred, caches, pooled := b.forward(gf, sc)
				diff := pred - target
				b.backward(caches, pooled, gf.X.Rows, 2*diff*inv, gb, sc)
				sc.Reset()
				return diff * diff
			},
			BatchParams: func([]int) []*tensor.Param { return params },
		},
	}
	if err := tr.Run(len(samples), b.rng); err != nil {
		return err
	}
	b.fitted = true
	return nil
}

// Predict implements Predictor.
func (b *BRPNAS) Predict(g *onnx.Graph) (float64, error) {
	if !b.fitted {
		return 0, fmt.Errorf("baselines: BRP-NAS not fitted")
	}
	gf, err := feats.Extract(g, 4)
	if err != nil {
		return 0, err
	}
	b.norm.Apply(gf)
	pred, _, _ := b.forward(gf, nil)
	return math.Exp(pred*b.tgtStd + b.tgtMean), nil
}
