package baselines

import (
	"math"
	"math/rand"
	"testing"

	"nnlqp/internal/core"
	"nnlqp/internal/hwsim"
	"nnlqp/internal/kernels"
	"nnlqp/internal/models"
	"nnlqp/internal/onnx"
	"nnlqp/internal/tensor"
)

func datasetPlatform(t testing.TB) *hwsim.Platform {
	t.Helper()
	p, err := hwsim.PlatformByName(hwsim.DatasetPlatform)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func modelSamples(t testing.TB, families []string, n int, seed int64) []ModelSample {
	t.Helper()
	p := datasetPlatform(t)
	rng := rand.New(rand.NewSource(seed))
	var out []ModelSample
	for _, fam := range families {
		for i := 0; i < n; i++ {
			g, err := models.Variant(fam, rng, 1)
			if err != nil {
				t.Fatal(err)
			}
			ms, err := p.TrueLatencyMS(g)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, ModelSample{Graph: g, LatencyMS: ms})
		}
	}
	return out
}

func TestLinRegExactFit(t *testing.T) {
	// y = 2x0 - 3x1 + 5
	x := [][]float64{{1, 0}, {0, 1}, {2, 2}, {3, 1}, {1, 4}}
	y := make([]float64, len(x))
	for i, f := range x {
		y[i] = 2*f[0] - 3*f[1] + 5
	}
	reg, err := FitLinReg(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(reg.Weights[0]-2) > 1e-9 || math.Abs(reg.Weights[1]+3) > 1e-9 || math.Abs(reg.Intercept-5) > 1e-9 {
		t.Fatalf("reg = %+v", reg)
	}
	if math.Abs(reg.Predict([]float64{10, -1})-28) > 1e-9 {
		t.Fatal("Predict wrong")
	}
}

func TestLinRegErrors(t *testing.T) {
	if _, err := FitLinReg(nil, nil, 0); err == nil {
		t.Fatal("want empty error")
	}
	if _, err := FitLinReg([][]float64{{1}}, []float64{1, 2}, 0); err == nil {
		t.Fatal("want length mismatch error")
	}
	if _, err := FitLinReg([][]float64{{1, 2}, {1}}, []float64{1, 2}, 0); err == nil {
		t.Fatal("want ragged error")
	}
}

func TestRandomForestFitsNonlinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 400
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x[i] = []float64{a, b}
		y[i] = a*b + math.Sin(a) // nonlinear
	}
	rf := FitRandomForest(x, y, DefaultRFConfig())
	var se, sy float64
	for i := 0; i < n; i++ {
		d := rf.Predict(x[i]) - y[i]
		se += d * d
		sy += y[i] * y[i]
	}
	if se/sy > 0.02 {
		t.Fatalf("forest residual too large: %.4f", se/sy)
	}
	// Empty forest predicts zero, doesn't crash.
	if FitRandomForest(nil, nil, DefaultRFConfig()).Predict([]float64{1}) != 0 {
		t.Fatal("empty forest should predict 0")
	}
}

func TestFLOPsAndFLOPsMAC(t *testing.T) {
	train := modelSamples(t, []string{models.FamilyResNet, models.FamilyVGG}, 15, 2)
	test := modelSamples(t, []string{models.FamilyResNet}, 8, 3)

	fl := &FLOPs{}
	if _, err := fl.Predict(train[0].Graph); err == nil {
		t.Fatal("want unfitted error")
	}
	if err := fl.Fit(train); err != nil {
		t.Fatal(err)
	}
	fm := &FLOPsMAC{}
	if err := fm.Fit(train); err != nil {
		t.Fatal(err)
	}
	truthF, predF, err := Evaluate(fl, test)
	if err != nil {
		t.Fatal(err)
	}
	truthM, predM, err := Evaluate(fm, test)
	if err != nil {
		t.Fatal(err)
	}
	mapeF := core.MAPE(truthF, predF)
	mapeM := core.MAPE(truthM, predM)
	t.Logf("FLOPs MAPE %.2f%%, FLOPs+MAC MAPE %.2f%%", mapeF, mapeM)
	// Both must at least produce the right scale; FLOPs alone is a known
	// weak proxy, but within-family it should stay under 100%.
	if mapeF > 120 || mapeM > 120 {
		t.Fatal("baseline predictions off-scale")
	}
}

func buildKernelDataset(t testing.TB, seed int64, graphsPerFam, cap int) map[string][]kernels.Sample {
	t.Helper()
	p := datasetPlatform(t)
	rng := rand.New(rand.NewSource(seed))
	var graphs []*onnx.Graph
	for _, fam := range []string{models.FamilyResNet, models.FamilySqueezeNet, models.FamilyMobileNetV2} {
		for i := 0; i < graphsPerFam; i++ {
			g, _ := models.Variant(fam, rng, 1)
			graphs = append(graphs, g)
		}
	}
	ds, err := kernels.Dataset(graphs, p, cap, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNNMeterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	p := datasetPlatform(t)
	ds := buildKernelDataset(t, 4, 3, 120)
	m := NewNNMeter(p, DefaultRFConfig())
	if err := m.Fit(nil); err == nil {
		t.Fatal("Fit before FitKernels must fail")
	}
	if err := m.FitKernels(ds); err != nil {
		t.Fatal(err)
	}
	train := modelSamples(t, []string{models.FamilyResNet, models.FamilySqueezeNet}, 12, 5)
	test := modelSamples(t, []string{models.FamilyResNet}, 8, 6)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	truths, preds, err := Evaluate(m, test)
	if err != nil {
		t.Fatal(err)
	}
	mape := core.MAPE(truths, preds)
	t.Logf("nn-Meter MAPE %.2f%%", mape)
	if mape > 60 {
		t.Fatalf("nn-Meter MAPE %.2f%% too large for in-family test", mape)
	}
	// Kernel-level prediction works per sample.
	for fam, ss := range ds {
		if len(ss) == 0 {
			continue
		}
		v, err := m.PredictKernel(ss[0])
		if err != nil || v <= 0 {
			t.Fatalf("kernel prediction for %s: %f, %v", fam, v, err)
		}
		break
	}
}

func TestTPUEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	p := datasetPlatform(t)
	ds := buildKernelDataset(t, 7, 2, 60)
	cfg := core.DefaultConfig()
	cfg.Hidden, cfg.Depth, cfg.HeadHidden, cfg.Epochs = 16, 2, 16, 10
	tp := NewTPU(p, cfg)
	if _, err := tp.Predict(modelSamples(t, []string{models.FamilyResNet}, 1, 8)[0].Graph); err == nil {
		t.Fatal("want unfitted error")
	}
	if err := tp.FitKernels(ds); err != nil {
		t.Fatal(err)
	}
	train := modelSamples(t, []string{models.FamilyResNet, models.FamilySqueezeNet}, 8, 9)
	test := modelSamples(t, []string{models.FamilySqueezeNet}, 6, 10)
	if err := tp.Fit(train); err != nil {
		t.Fatal(err)
	}
	truths, preds, err := Evaluate(tp, test)
	if err != nil {
		t.Fatal(err)
	}
	mape := core.MAPE(truths, preds)
	t.Logf("TPU MAPE %.2f%%", mape)
	if mape > 80 {
		t.Fatalf("TPU baseline off-scale: %.2f%%", mape)
	}
}

func TestBRPNASEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	cfg := DefaultBRPNASConfig()
	cfg.Hidden, cfg.Depth, cfg.Epochs = 24, 3, 25
	b := NewBRPNAS(cfg)
	if _, err := b.Predict(modelSamples(t, []string{models.FamilyResNet}, 1, 11)[0].Graph); err == nil {
		t.Fatal("want unfitted error")
	}
	if err := b.Fit(nil); err == nil {
		t.Fatal("want empty training set error")
	}
	train := modelSamples(t, []string{models.FamilySqueezeNet}, 50, 12)
	test := modelSamples(t, []string{models.FamilySqueezeNet}, 15, 13)
	if err := b.Fit(train); err != nil {
		t.Fatal(err)
	}
	truths, preds, err := Evaluate(b, test)
	if err != nil {
		t.Fatal(err)
	}
	mape := core.MAPE(truths, preds)
	t.Logf("BRP-NAS MAPE %.2f%%", mape)
	if mape > 40 {
		t.Fatalf("BRP-NAS should learn in-family: %.2f%%", mape)
	}
}

func TestGCNAggregateSymmetry(t *testing.T) {
	// <Âx, y> must equal <x, Ây> (Â symmetric): validates the backward.
	adj := [][]int{{1, 2}, {0}, {0}}
	deg := degrees(adj)
	rng := rand.New(rand.NewSource(14))
	x := tensorRandom(rng, 3, 4)
	y := tensorRandom(rng, 3, 4)
	ax := aggregate(x, adj, deg, nil)
	ay := aggregateBackward(y, adj, deg, nil)
	var lhs, rhs float64
	for i := range ax.Data {
		lhs += ax.Data[i] * y.Data[i]
		rhs += x.Data[i] * ay.Data[i]
	}
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("aggregate not symmetric: %f vs %f", lhs, rhs)
	}
}

func TestBRPNASBitIdenticalAcrossWorkers(t *testing.T) {
	samples := modelSamples(t, []string{models.FamilySqueezeNet}, 20, 15)
	fit := func(workers int) []*tensor.Param {
		cfg := DefaultBRPNASConfig()
		cfg.Hidden, cfg.Depth, cfg.Epochs = 12, 2, 4
		cfg.Workers = workers
		b := NewBRPNAS(cfg)
		if err := b.Fit(samples); err != nil {
			t.Fatal(err)
		}
		return b.params()
	}
	ref := fit(1)
	got := fit(4)
	for pi := range ref {
		for j := range ref[pi].Value.Data {
			if got[pi].Value.Data[j] != ref[pi].Value.Data[j] {
				t.Fatalf("param %d[%d]: %v != %v", pi, j, got[pi].Value.Data[j], ref[pi].Value.Data[j])
			}
		}
	}
}

func tensorRandom(rng *rand.Rand, r, c int) *tensor.Matrix {
	m := tensor.NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}
