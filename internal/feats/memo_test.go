package feats

import (
	"reflect"
	"testing"

	"nnlqp/internal/models"
)

func TestExtractCachedReturnsSharedInstance(t *testing.T) {
	g := models.BuildSqueezeNet(models.BaseSqueezeNet(1))
	gf1, err := ExtractCached(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	gf2, err := ExtractCached(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if gf1 != gf2 {
		t.Fatal("second ExtractCached must return the memoized pointer")
	}

	// A different element size is a different feature payload: the memo must
	// not serve the fp32 extraction for an int8 request.
	gf3, err := ExtractCached(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gf3 == gf1 {
		t.Fatal("elemSize mismatch must recompute")
	}

	// InvalidateMemo drops the cached features.
	g.InvalidateMemo()
	gf4, err := ExtractCached(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if gf4 == gf1 {
		t.Fatal("post-invalidation ExtractCached must recompute")
	}
	if !reflect.DeepEqual(gf4.X.Data, gf1.X.Data) || !reflect.DeepEqual(gf4.Static, gf1.Static) {
		t.Fatal("recomputed features must equal the originals for an unmutated graph")
	}
}

func TestCopyFromDeepCopiesAndReusesBuffers(t *testing.T) {
	big := extract(t, models.BuildResNet(models.BaseResNet(1)))
	small := extract(t, models.BuildSqueezeNet(models.BaseSqueezeNet(1)))

	var gf GraphFeatures
	gf.CopyFrom(big)
	if !reflect.DeepEqual(gf.NodeNames, big.NodeNames) ||
		!reflect.DeepEqual(gf.X.Data, big.X.Data) ||
		!reflect.DeepEqual(gf.Adj, big.Adj) ||
		!reflect.DeepEqual(gf.Static, big.Static) {
		t.Fatal("CopyFrom must reproduce the source exactly")
	}

	// Deep copy: mutating the copy must not touch the source.
	gf.X.Data[0] += 100
	gf.Adj[0] = append(gf.Adj[0], 9999)
	gf.Static[0] += 100
	if gf.X.Data[0] == big.X.Data[0] || gf.Static[0] == big.Static[0] {
		t.Fatal("copy aliases the source")
	}
	for _, v := range big.Adj[0] {
		if v == 9999 {
			t.Fatal("adjacency aliases the source")
		}
	}

	// Shrink then regrow through the same receiver: contents stay exact and
	// the large-capacity buffers are reused (the steady-state pool pattern).
	bigCap := cap(gf.X.Data)
	gf.CopyFrom(small)
	if !reflect.DeepEqual(gf.X.Data, small.X.Data) || !reflect.DeepEqual(gf.Adj, small.Adj) {
		t.Fatal("shrinking CopyFrom corrupted contents")
	}
	if cap(gf.X.Data) != bigCap {
		t.Fatalf("shrinking CopyFrom reallocated X (cap %d -> %d)", bigCap, cap(gf.X.Data))
	}
	gf.CopyFrom(big)
	if !reflect.DeepEqual(gf.X.Data, big.X.Data) ||
		!reflect.DeepEqual(gf.Adj, big.Adj) ||
		!reflect.DeepEqual(gf.Static, big.Static) {
		t.Fatal("regrowing CopyFrom corrupted contents")
	}
}

func TestCopyFromSteadyStateAllocFree(t *testing.T) {
	src := extract(t, models.BuildSqueezeNet(models.BaseSqueezeNet(1)))
	var gf GraphFeatures
	gf.CopyFrom(src)
	avg := testing.AllocsPerRun(50, func() { gf.CopyFrom(src) })
	if avg > 0 {
		t.Fatalf("warmed CopyFrom allocates %.1f objects/op, want 0", avg)
	}
}
