// Package feats extracts the unified graph embedding inputs of NNLP
// (paper §6.1): per-node feature vectors
//
//	F_v^0 = F_v^code ⊕ F_v^attr ⊕ F_v^shape      (Eq. 3)
//
// (operator one-hot ⊕ attribute vector ⊕ output-shape encoding) and the
// whole-graph static feature
//
//	F_G^static = (batch, FLOPs, params, memory access)   (part of Eq. 5)
//
// plus the mean/variance normalization the paper applies to the attribute
// and shape fields. The same extraction serves operators, kernels,
// sub-graphs and whole networks, which is what makes the embedding
// "unified".
package feats

import (
	"fmt"
	"math"

	"nnlqp/internal/onnx"
	"nnlqp/internal/tensor"
)

// Numeric feature layout (after the operator one-hot):
//
//	0 kernel_h   1 kernel_w   2 stride_h   3 stride_w
//	4 pad_total  5 log2 group 6 clip_range 7 aux (LRN size / concat arity)
//	8 log N      9 log C     10 log H     11 log W
//	12 log numel 13 log out-bytes(fp32-equivalent)
//	14 log node-FLOPs  15 log node-MAC  16 log node-params
//
// The last three expose each operator's static cost accounting to the GNN.
// They are derivable from the preceding fields, but surfacing them directly
// makes the latency-relevant signal family-independent ("node features
// cover factors that affect the operator latency", §6.1).
const (
	numAttr  = 8
	numShape = 6
	numCost  = 3
)

// NumOps is the operator one-hot width.
var NumOps = len(onnx.AllOpTypes)

// FeatureDim is the per-node feature vector length.
var FeatureDim = NumOps + numAttr + numShape + numCost

// StaticDim is the length of the graph-level static feature.
const StaticDim = 4

// GraphFeatures is the extracted, model-ready form of one graph.
type GraphFeatures struct {
	// NodeNames holds node names in topological order; row i of X is the
	// feature vector of NodeNames[i].
	NodeNames []string
	// X is the n×FeatureDim node feature matrix (F_v^0 rows).
	X *tensor.Matrix
	// Adj is the undirected neighbour list over node indices (N(v) of
	// Eq. 4: both producers and consumers).
	Adj [][]int
	// Static is F_G^static: batch, log-FLOPs, log-params, log-MAC.
	Static []float64
}

// NumNodes returns the node count.
func (gf *GraphFeatures) NumNodes() int { return len(gf.NodeNames) }

// cachedFeats is the payload memoized on an onnx.Graph by ExtractCached.
type cachedFeats struct {
	elemSize int
	gf       *GraphFeatures
}

// ExtractCached is Extract memoized on the graph: the first call per
// (*onnx.Graph, elemSize) pays the full extraction, later calls return the
// cached features in a single atomic load. The returned features are shared
// and must be treated as read-only — clone (or CopyFrom) before normalizing.
// Mutating a graph after extraction requires (*onnx.Graph).InvalidateMemo.
func ExtractCached(g *onnx.Graph, elemSize int) (*GraphFeatures, error) {
	if v := g.FeatMemo(); v != nil {
		if c, ok := v.(*cachedFeats); ok && c.elemSize == elemSize {
			return c.gf, nil
		}
	}
	gf, err := Extract(g, elemSize)
	if err != nil {
		return nil, err
	}
	g.SetFeatMemo(&cachedFeats{elemSize: elemSize, gf: gf})
	return gf, nil
}

// Extract computes features for a graph. elemSize sets the byte width used
// in memory-access accounting (4 = fp32, matching the paper's use of the
// original model's statistics).
func Extract(g *onnx.Graph, elemSize int) (*GraphFeatures, error) {
	shapes, err := g.InferShapes()
	if err != nil {
		return nil, err
	}
	cost, err := g.CostWithShapes(shapes, elemSize)
	if err != nil {
		return nil, err
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	idx := make(map[string]int, len(order))
	for i, n := range order {
		idx[n.Name] = i
	}

	gf := &GraphFeatures{
		NodeNames: make([]string, len(order)),
		X:         tensor.NewMatrix(len(order), FeatureDim),
		Adj:       make([][]int, len(order)),
		Static: []float64{
			float64(g.BatchSize()),
			math.Log1p(float64(cost.FLOPs)),
			math.Log1p(float64(cost.Params)),
			math.Log1p(float64(cost.MAC)),
		},
	}

	for i, n := range order {
		gf.NodeNames[i] = n.Name
		row := gf.X.Row(i)
		code, ok := onnx.OpCode(n.Op)
		if !ok {
			return nil, fmt.Errorf("feats: unknown op %q", n.Op)
		}
		row[code] = 1
		fillAttr(row[NumOps:NumOps+numAttr], n)
		fillShape(row[NumOps+numAttr:NumOps+numAttr+numShape], shapes[n.Name], elemSize)
		nc := cost.PerNode[n.Name]
		costRow := row[NumOps+numAttr+numShape:]
		costRow[0] = math.Log1p(float64(nc.FLOPs))
		costRow[1] = math.Log1p(float64(nc.MAC()))
		costRow[2] = math.Log1p(float64(nc.Params))
	}

	// Undirected adjacency: for each edge producer→consumer, both nodes
	// list each other.
	for i, n := range order {
		for _, in := range n.Inputs {
			if j, ok := idx[in]; ok {
				gf.Adj[i] = append(gf.Adj[i], j)
				gf.Adj[j] = append(gf.Adj[j], i)
			}
		}
	}
	return gf, nil
}

func fillAttr(dst []float64, n *onnx.Node) {
	if k := n.Attrs.Ints("kernel_shape", nil); len(k) == 2 {
		dst[0], dst[1] = float64(k[0]), float64(k[1])
	}
	if s := n.Attrs.Ints("strides", nil); len(s) == 2 {
		dst[2], dst[3] = float64(s[0]), float64(s[1])
	}
	if p := n.Attrs.Ints("pads", nil); len(p) == 4 {
		dst[4] = float64(p[0] + p[1] + p[2] + p[3])
	}
	dst[5] = math.Log2(float64(n.Attrs.Int("group", 1)))
	if n.Op == onnx.OpClip {
		dst[6] = n.Attrs.Float("max", 0) - n.Attrs.Float("min", 0)
	}
	switch n.Op {
	case onnx.OpLRN:
		dst[7] = float64(n.Attrs.Int("size", 0))
	case onnx.OpConcat:
		dst[7] = float64(len(n.Inputs))
	case onnx.OpGemm:
		dst[7] = math.Log1p(float64(n.Attrs.Int("out_features", 0)))
	case onnx.OpConv:
		dst[7] = math.Log1p(float64(n.Attrs.Int("channels", 0)))
	}
}

func fillShape(dst []float64, s onnx.Shape, elemSize int) {
	if len(s) == 0 {
		return
	}
	dim := func(i int) float64 {
		if i < len(s) {
			return float64(s[i])
		}
		return 1
	}
	dst[0] = math.Log1p(dim(0))
	dst[1] = math.Log1p(dim(1))
	dst[2] = math.Log1p(dim(2))
	dst[3] = math.Log1p(dim(3))
	dst[4] = math.Log1p(float64(s.Numel()))
	dst[5] = math.Log1p(float64(s.Numel() * int64(elemSize)))
}

// Normalizer standardizes the numeric (non-one-hot) node feature columns
// and the static features with training-set means and variances, the
// paper's "applying the mean and variance for normalization".
type Normalizer struct {
	// Mean/Std cover the numeric node-feature columns (FeatureDim-NumOps
	// entries each).
	Mean []float64
	Std  []float64
	// StaticMean/StaticStd cover the StaticDim static features.
	StaticMean []float64
	StaticStd  []float64
}

// FitNormalizer computes normalization statistics over a training set.
func FitNormalizer(gfs []*GraphFeatures) *Normalizer {
	nNum := FeatureDim - NumOps
	nz := &Normalizer{
		Mean: make([]float64, nNum), Std: make([]float64, nNum),
		StaticMean: make([]float64, StaticDim), StaticStd: make([]float64, StaticDim),
	}
	var rows float64
	for _, gf := range gfs {
		for i := 0; i < gf.X.Rows; i++ {
			row := gf.X.Row(i)[NumOps:]
			for j, v := range row {
				nz.Mean[j] += v
			}
			rows++
		}
	}
	if rows == 0 {
		for j := range nz.Std {
			nz.Std[j] = 1
		}
		for j := range nz.StaticStd {
			nz.StaticStd[j] = 1
		}
		return nz
	}
	for j := range nz.Mean {
		nz.Mean[j] /= rows
	}
	for _, gf := range gfs {
		for i := 0; i < gf.X.Rows; i++ {
			row := gf.X.Row(i)[NumOps:]
			for j, v := range row {
				d := v - nz.Mean[j]
				nz.Std[j] += d * d
			}
		}
	}
	for j := range nz.Std {
		nz.Std[j] = math.Sqrt(nz.Std[j] / rows)
		if nz.Std[j] < 1e-8 {
			nz.Std[j] = 1
		}
	}

	for _, gf := range gfs {
		for j, v := range gf.Static {
			nz.StaticMean[j] += v
		}
	}
	n := float64(len(gfs))
	for j := range nz.StaticMean {
		nz.StaticMean[j] /= n
	}
	for _, gf := range gfs {
		for j, v := range gf.Static {
			d := v - nz.StaticMean[j]
			nz.StaticStd[j] += d * d
		}
	}
	for j := range nz.StaticStd {
		nz.StaticStd[j] = math.Sqrt(nz.StaticStd[j] / n)
		if nz.StaticStd[j] < 1e-8 {
			nz.StaticStd[j] = 1
		}
	}
	return nz
}

// Apply standardizes gf in place.
func (nz *Normalizer) Apply(gf *GraphFeatures) {
	nz.ApplyX(gf.X)
	nz.ApplyStatic(gf.Static)
}

// ApplyX standardizes the numeric columns of a node-feature matrix in
// place. Rows are independent, so applying it to a packed batch (several
// graphs' rows concatenated) is bit-identical to applying it per graph —
// the batched prediction path relies on that.
func (nz *Normalizer) ApplyX(x *tensor.Matrix) {
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)[NumOps:]
		for j := range row {
			row[j] = (row[j] - nz.Mean[j]) / nz.Std[j]
		}
	}
}

// ApplyStatic standardizes one graph's static feature vector in place.
func (nz *Normalizer) ApplyStatic(static []float64) {
	for j := range static {
		static[j] = (static[j] - nz.StaticMean[j]) / nz.StaticStd[j]
	}
}

// CopyFrom deep-copies src into gf, reusing gf's existing buffers wherever
// capacity allows. In steady state (same-or-smaller graphs through a pooled
// receiver) the call is allocation-free — the serving path's per-request
// clone-then-normalize runs entirely on recycled memory.
func (gf *GraphFeatures) CopyFrom(src *GraphFeatures) {
	gf.NodeNames = append(gf.NodeNames[:0], src.NodeNames...)
	n := len(src.X.Data)
	if gf.X == nil {
		gf.X = &tensor.Matrix{}
	}
	if cap(gf.X.Data) < n {
		gf.X.Data = make([]float64, n)
	}
	gf.X.Rows, gf.X.Cols = src.X.Rows, src.X.Cols
	gf.X.Data = gf.X.Data[:n]
	copy(gf.X.Data, src.X.Data)
	if cap(gf.Adj) < len(src.Adj) {
		adj := make([][]int, len(src.Adj))
		copy(adj, gf.Adj) // keep already-grown inner slices reusable
		gf.Adj = adj
	}
	gf.Adj = gf.Adj[:len(src.Adj)]
	for i, a := range src.Adj {
		gf.Adj[i] = append(gf.Adj[i][:0], a...)
	}
	gf.Static = append(gf.Static[:0], src.Static...)
}

// Clone deep-copies the features (Apply mutates, so callers that reuse
// extracted features across normalizers need copies).
func (gf *GraphFeatures) Clone() *GraphFeatures {
	out := &GraphFeatures{
		NodeNames: append([]string(nil), gf.NodeNames...),
		X:         gf.X.Clone(),
		Adj:       make([][]int, len(gf.Adj)),
		Static:    append([]float64(nil), gf.Static...),
	}
	for i, a := range gf.Adj {
		out.Adj[i] = append([]int(nil), a...)
	}
	return out
}
