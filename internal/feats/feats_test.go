package feats

import (
	"math"
	"testing"

	"nnlqp/internal/models"
	"nnlqp/internal/onnx"
)

func extract(t *testing.T, g *onnx.Graph) *GraphFeatures {
	t.Helper()
	gf, err := Extract(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	return gf
}

func TestExtractShapes(t *testing.T) {
	g := models.BuildResNet(models.BaseResNet(1))
	gf := extract(t, g)
	if gf.NumNodes() != len(g.Nodes) {
		t.Fatalf("nodes = %d, want %d", gf.NumNodes(), len(g.Nodes))
	}
	if gf.X.Rows != gf.NumNodes() || gf.X.Cols != FeatureDim {
		t.Fatalf("X is %dx%d", gf.X.Rows, gf.X.Cols)
	}
	if len(gf.Static) != StaticDim {
		t.Fatalf("static dim = %d", len(gf.Static))
	}
	if len(gf.Adj) != gf.NumNodes() {
		t.Fatalf("adj len = %d", len(gf.Adj))
	}
}

func TestOneHotExactlyOne(t *testing.T) {
	g := models.BuildMobileNetV2(models.BaseMobileNetV2(1))
	gf := extract(t, g)
	for i := 0; i < gf.X.Rows; i++ {
		var ones int
		for _, v := range gf.X.Row(i)[:NumOps] {
			if v == 1 {
				ones++
			} else if v != 0 {
				t.Fatal("one-hot contains non-binary value")
			}
		}
		if ones != 1 {
			t.Fatalf("row %d has %d ones", i, ones)
		}
	}
}

func TestConvFeaturesEncodeAttrs(t *testing.T) {
	b := onnx.NewBuilder("t", "Test", onnx.Shape{2, 3, 32, 32})
	c := b.Conv(b.Input(), 16, 5, 2, 2, 1)
	g := b.MustFinish(c)
	gf := extract(t, g)
	row := gf.X.Row(0)
	num := row[NumOps:]
	if num[0] != 5 || num[1] != 5 {
		t.Fatalf("kernel feature = %v", num[:2])
	}
	if num[2] != 2 || num[3] != 2 {
		t.Fatalf("stride feature = %v", num[2:4])
	}
	if num[4] != 8 { // pads 2+2+2+2
		t.Fatalf("pad feature = %f", num[4])
	}
	// Shape features: output is (2,16,16,16).
	if math.Abs(num[8]-math.Log1p(2)) > 1e-12 {
		t.Fatalf("batch shape feature = %f", num[8])
	}
	if math.Abs(num[9]-math.Log1p(16)) > 1e-12 {
		t.Fatalf("channel shape feature = %f", num[9])
	}
}

func TestAdjacencyIsUndirectedAndMatchesEdges(t *testing.T) {
	b := onnx.NewBuilder("t", "Test", onnx.Shape{1, 8, 8, 8})
	c := b.Conv(b.Input(), 8, 3, 1, 1, 1)
	r := b.Relu(c)
	s := b.Sigmoid(c)
	g := b.MustFinish(b.AddTensors(r, s))
	gf := extract(t, g)
	idx := make(map[string]int)
	for i, n := range gf.NodeNames {
		idx[n] = i
	}
	has := func(a, b int) bool {
		for _, x := range gf.Adj[a] {
			if x == b {
				return true
			}
		}
		return false
	}
	ci, ri, si, ai := idx["Conv_1"], idx["Relu_1"], idx["Sigmoid_1"], idx["Add_1"]
	for _, pair := range [][2]int{{ci, ri}, {ci, si}, {ri, ai}, {si, ai}} {
		if !has(pair[0], pair[1]) || !has(pair[1], pair[0]) {
			t.Fatalf("edge %v not undirected in adjacency", pair)
		}
	}
	if has(ci, ai) {
		t.Fatal("phantom edge conv-add")
	}
}

func TestStaticFeaturesMatchCost(t *testing.T) {
	g := models.BuildSqueezeNet(models.BaseSqueezeNet(1))
	gf := extract(t, g)
	cost, _ := g.Cost(4)
	if gf.Static[0] != 1 {
		t.Fatalf("batch static = %f", gf.Static[0])
	}
	if math.Abs(gf.Static[1]-math.Log1p(float64(cost.FLOPs))) > 1e-9 {
		t.Fatal("FLOPs static mismatch")
	}
	if math.Abs(gf.Static[3]-math.Log1p(float64(cost.MAC))) > 1e-9 {
		t.Fatal("MAC static mismatch")
	}
}

func TestNormalizerStandardizes(t *testing.T) {
	var gfs []*GraphFeatures
	for _, build := range []func() *onnx.Graph{
		func() *onnx.Graph { return models.BuildResNet(models.BaseResNet(1)) },
		func() *onnx.Graph { return models.BuildSqueezeNet(models.BaseSqueezeNet(1)) },
		func() *onnx.Graph { return models.BuildMobileNetV2(models.BaseMobileNetV2(1)) },
	} {
		gfs = append(gfs, extract(t, build()))
	}
	nz := FitNormalizer(gfs)
	// Normalize copies and verify the pooled numeric columns have ~zero
	// mean and ~unit variance.
	var rows float64
	sums := make([]float64, FeatureDim-NumOps)
	sqs := make([]float64, FeatureDim-NumOps)
	for _, gf := range gfs {
		c := gf.Clone()
		nz.Apply(c)
		for i := 0; i < c.X.Rows; i++ {
			for j, v := range c.X.Row(i)[NumOps:] {
				sums[j] += v
				sqs[j] += v * v
			}
			rows++
		}
		// One-hot part untouched.
		for i := 0; i < c.X.Rows; i++ {
			for j, v := range c.X.Row(i)[:NumOps] {
				if v != gf.X.Row(i)[j] {
					t.Fatal("normalizer touched one-hot columns")
				}
			}
		}
	}
	for j := range sums {
		mean := sums[j] / rows
		variance := sqs[j]/rows - mean*mean
		if math.Abs(mean) > 1e-6 {
			t.Fatalf("column %d mean %f after normalization", j, mean)
		}
		if variance > 1e-6 && math.Abs(variance-1) > 1e-3 {
			t.Fatalf("column %d variance %f after normalization", j, variance)
		}
	}
}

func TestNormalizerConstantColumnSafe(t *testing.T) {
	gfs := []*GraphFeatures{extract(t, models.BuildVGG(models.BaseVGG(1)))}
	nz := FitNormalizer(gfs)
	for _, s := range nz.Std {
		if s <= 0 {
			t.Fatal("std must be positive")
		}
	}
	for _, s := range nz.StaticStd {
		if s <= 0 {
			t.Fatal("static std must be positive")
		}
	}
	// Single graph: static features are constant, std falls back to 1 and
	// Apply maps them to 0.
	c := gfs[0].Clone()
	nz.Apply(c)
	for _, v := range c.Static {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("constant static should normalize to 0, got %f", v)
		}
	}
}

func TestFitNormalizerEmpty(t *testing.T) {
	nz := FitNormalizer(nil)
	for _, s := range nz.Std {
		if s != 1 {
			t.Fatal("empty fit should default std to 1")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	gf := extract(t, models.BuildSqueezeNet(models.BaseSqueezeNet(1)))
	c := gf.Clone()
	c.X.Set(0, 0, 99)
	c.Static[0] = 99
	c.Adj[0] = append(c.Adj[0], 0)
	if gf.X.At(0, 0) == 99 || gf.Static[0] == 99 {
		t.Fatal("clone shares storage")
	}
}
