package serve

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"nnlqp/internal/hwsim"
	"nnlqp/internal/models"
	"nnlqp/internal/onnx"
	"nnlqp/internal/query"
)

// ActiveConfig controls the active-measurement scheduler.
type ActiveConfig struct {
	// Interval is the tick cadence of the background loop.
	Interval time.Duration
	// PerTick caps how many (graph, platform) measurements one tick spends.
	PerTick int
	// Candidates is how many variant graphs each tick draws and scores.
	Candidates int
	// Platforms restricts measurement targets (empty = every simulator
	// platform the farm serves).
	Platforms []string
	// Families restricts candidate generation (empty = models.Families).
	Families []string
	// Seed makes candidate drawing deterministic.
	Seed int64
	// Timeout bounds each scheduled measurement.
	Timeout time.Duration
}

// DefaultActiveConfig returns the server's default active-measurement knobs.
func DefaultActiveConfig() ActiveConfig {
	return ActiveConfig{
		Interval:   15 * time.Second,
		PerTick:    2,
		Candidates: 8,
		Seed:       1,
		Timeout:    30 * time.Second,
	}
}

// WithDefaults returns a copy with every zero field set to its default.
func (c ActiveConfig) WithDefaults() ActiveConfig {
	d := DefaultActiveConfig()
	if c.Interval <= 0 {
		c.Interval = d.Interval
	}
	if c.PerTick <= 0 {
		c.PerTick = d.PerTick
	}
	if c.Candidates <= 0 {
		c.Candidates = d.Candidates
	}
	if len(c.Families) == 0 {
		c.Families = models.Families
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Timeout <= 0 {
		c.Timeout = d.Timeout
	}
	return c
}

// IdleReporter reports spare measurement capacity for a platform. The
// hwsim farm implements it (hwsim.Farm.Idle); a nil reporter means the
// scheduler cannot see farm load and schedules unconditionally.
type IdleReporter interface {
	Idle(platform string) int
}

// ActiveStatus is a snapshot of the scheduler's counters.
type ActiveStatus struct {
	Ticks       int64 `json:"ticks"`
	Scheduled   int64 `json:"scheduled"`
	Measured    int64 `json:"measured"`
	Unsupported int64 `json:"unsupported"`
	Failures    int64 `json:"failures"`
	SkippedBusy int64 `json:"skipped_busy"`
	// LogCandidates / ZooCandidates count where scored candidates came from:
	// the query observation log (the workload's observed distribution) vs the
	// static model zoo (the cold-start fallback).
	LogCandidates int64  `json:"log_candidates"`
	ZooCandidates int64  `json:"zoo_candidates"`
	LastError     string `json:"last_error,omitempty"`
}

// Scheduler spends idle farm capacity on the measurements that teach the
// predictor the most: each tick it draws candidate variant graphs, scores
// them by predictor uncertainty — platform-head disagreement (coefficient of
// variation across PredictAll outputs) plus a kernel-family coverage bonus
// for families the database has rarely seen — and measures the top scorers
// through the query system, so the results land in the evolving database
// where the Retrainer picks them up.
type Scheduler struct {
	sys    *query.System
	engine *Engine
	idle   IdleReporter // may be nil
	cfg    ActiveConfig

	mu             sync.Mutex
	rng            *rand.Rand
	status         ActiveStatus
	famSeen        map[string]int // kernel families measured so far
	stopCh, doneCh chan struct{}
}

// NewScheduler builds an active-measurement scheduler. idle may be nil
// (no capacity gating). Call Start for the background loop or TickOnce to
// drive it manually.
func NewScheduler(sys *query.System, engine *Engine, idle IdleReporter, cfg ActiveConfig) *Scheduler {
	cfg = cfg.WithDefaults()
	return &Scheduler{
		sys:     sys,
		engine:  engine,
		idle:    idle,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		famSeen: make(map[string]int),
	}
}

// Status snapshots the scheduler counters.
func (a *Scheduler) Status() ActiveStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.status
}

// Start launches the background tick loop; Stop terminates it.
func (a *Scheduler) Start() {
	a.mu.Lock()
	if a.stopCh != nil {
		a.mu.Unlock()
		return
	}
	a.stopCh = make(chan struct{})
	a.doneCh = make(chan struct{})
	stop, done := a.stopCh, a.doneCh
	a.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(a.cfg.Interval)
		defer t.Stop()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() { <-stop; cancel() }()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			if err := a.TickOnce(ctx); err != nil && ctx.Err() == nil {
				a.mu.Lock()
				a.status.LastError = err.Error()
				a.mu.Unlock()
			}
		}
	}()
}

// Stop terminates the background loop, cancelling any in-flight measurement.
func (a *Scheduler) Stop() {
	a.mu.Lock()
	stop, done := a.stopCh, a.doneCh
	a.stopCh, a.doneCh = nil, nil
	a.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// candidate is a scored measurement proposal.
type candidate struct {
	graph *onnx.Graph
	score float64
}

// score computes the uncertainty score for one graph: the coefficient of
// variation of the per-platform head predictions (heads that disagree mark
// graphs the shared backbone does not represent well) plus a coverage bonus
// of 1/(1+seen) per kernel family in the graph (families the measurement
// history has rarely exercised). A graph the predictor cannot featurize
// scores the coverage bonus alone.
func (a *Scheduler) score(g *onnx.Graph) float64 {
	var s float64
	if pred := a.engine.Current(); pred != nil {
		if all, err := pred.PredictAll(g); err == nil && len(all) > 1 {
			var sum float64
			for _, v := range all {
				sum += v
			}
			mean := sum / float64(len(all))
			if mean > 0 {
				var varsum float64
				for _, v := range all {
					varsum += (v - mean) * (v - mean)
				}
				s += math.Sqrt(varsum/float64(len(all))) / mean
			}
		}
	}
	counts, _, err := hwsim.KernelFamilyStats([]*onnx.Graph{g})
	if err == nil {
		a.mu.Lock()
		for fam := range counts {
			s += 1 / float64(1+a.famSeen[fam])
		}
		a.mu.Unlock()
	}
	return s
}

// noteMeasured records a measured graph's kernel families so the coverage
// bonus decays for them.
func (a *Scheduler) noteMeasured(g *onnx.Graph) {
	counts, _, err := hwsim.KernelFamilyStats([]*onnx.Graph{g})
	if err != nil {
		return
	}
	a.mu.Lock()
	for fam := range counts {
		a.famSeen[fam]++
	}
	a.mu.Unlock()
}

// platforms resolves the measurement targets for one tick.
func (a *Scheduler) platforms() []string {
	if len(a.cfg.Platforms) > 0 {
		return a.cfg.Platforms
	}
	return hwsim.PlatformNames()
}

// logBonus weights candidates drawn from the query observation log over zoo
// variants: graphs real traffic asked about are worth more than synthetic
// ones, and graphs the database still has no ground truth for (degraded or
// failed queries) are worth the most — measuring them converts a served guess
// into a stored measurement.
const (
	logBonusObserved   = 0.5
	logBonusUnmeasured = 1.5
)

// drawCandidates assembles one tick's scored candidate pool for the target
// platform. Up to half the budget is drawn from the query log's observed
// distribution (most recent first, skipping graphs the L1 already holds
// ground truth for on the target); the remainder — the whole budget when the
// log is cold — comes from the static model zoo.
func (a *Scheduler) drawCandidates(target string) []candidate {
	cands := make([]candidate, 0, a.cfg.Candidates)
	var logDrawn, zooDrawn int64

	quota := (a.cfg.Candidates + 1) / 2
	seen := make(map[uint64]bool)
	for _, o := range a.sys.Observations(4 * a.cfg.Candidates) {
		if len(cands) >= quota {
			break
		}
		if seen[uint64(o.Hash)] || a.sys.CachedPositive(o.Graph, target) {
			continue
		}
		seen[uint64(o.Hash)] = true
		bonus := logBonusObserved
		if !o.Measured || o.Degraded {
			bonus = logBonusUnmeasured
		}
		cands = append(cands, candidate{graph: o.Graph, score: a.score(o.Graph) + bonus})
		logDrawn++
	}

	a.mu.Lock()
	rng := a.rng
	// Draw under the lock: rand.Rand is not goroutine-safe and Start's loop
	// may race a manual TickOnce call.
	type draw struct {
		fam  string
		seed int64
	}
	draws := make([]draw, a.cfg.Candidates-len(cands))
	for i := range draws {
		draws[i] = draw{fam: a.cfg.Families[rng.Intn(len(a.cfg.Families))], seed: rng.Int63()}
	}
	a.mu.Unlock()
	for _, d := range draws {
		g, err := models.Variant(d.fam, rand.New(rand.NewSource(d.seed)), 1)
		if err != nil {
			continue
		}
		cands = append(cands, candidate{graph: g, score: a.score(g)})
		zooDrawn++
	}

	a.mu.Lock()
	a.status.LogCandidates += logDrawn
	a.status.ZooCandidates += zooDrawn
	a.mu.Unlock()
	return cands
}

// TickOnce runs one scheduling round: pick the target platform, draw
// candidates from the query log's observed distribution (zoo fallback),
// score, and measure the top PerTick. It returns the first measurement error
// (unsupported-op rejections are counted, not returned — a simulator platform
// legitimately rejects some variants).
func (a *Scheduler) TickOnce(ctx context.Context) error {
	a.mu.Lock()
	a.status.Ticks++
	ticks := a.status.Ticks
	a.mu.Unlock()

	// Pick the platform with the most idle devices first (the log filter is
	// target-relative); with no reporter, rotate deterministically.
	plats := a.platforms()
	if len(plats) == 0 {
		return nil
	}
	target := plats[0]
	if a.idle != nil {
		best := -1
		for _, p := range plats {
			if n := a.idle.Idle(p); n > best {
				best, target = n, p
			}
		}
		if best <= 0 {
			a.mu.Lock()
			a.status.SkippedBusy++
			a.mu.Unlock()
			return nil
		}
	} else {
		target = plats[int(ticks)%len(plats)]
	}

	cands := a.drawCandidates(target)
	if len(cands) == 0 {
		return nil
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].score > cands[j].score })

	var firstErr error
	n := a.cfg.PerTick
	if n > len(cands) {
		n = len(cands)
	}
	for _, c := range cands[:n] {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		a.mu.Lock()
		a.status.Scheduled++
		a.mu.Unlock()
		mctx, cancel := context.WithTimeout(ctx, a.cfg.Timeout)
		_, err := a.sys.Query(mctx, c.graph, target)
		cancel()
		switch {
		case err == nil:
			a.mu.Lock()
			a.status.Measured++
			a.mu.Unlock()
			a.noteMeasured(c.graph)
		case isUnsupported(err):
			a.mu.Lock()
			a.status.Unsupported++
			a.mu.Unlock()
		default:
			a.mu.Lock()
			a.status.Failures++
			a.mu.Unlock()
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

func isUnsupported(err error) bool {
	var u *hwsim.UnsupportedOpError
	return errors.As(err, &u) || errors.Is(err, hwsim.ErrUnknownPlatform)
}
