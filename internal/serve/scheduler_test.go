package serve

import (
	"context"
	"testing"
	"time"

	"nnlqp/internal/hwsim"
	"nnlqp/internal/models"
	"nnlqp/internal/query"
)

func fastActiveConfig() ActiveConfig {
	return ActiveConfig{
		Interval:   10 * time.Millisecond,
		PerTick:    1,
		Candidates: 2,
		Platforms:  []string{hwsim.DatasetPlatform},
		Families:   []string{models.FamilySqueezeNet},
		Seed:       3,
		Timeout:    30 * time.Second,
	}
}

// TestSchedulerTickMeasures: one tick must land a real measurement in the
// evolving database through the query path.
func TestSchedulerTickMeasures(t *testing.T) {
	store := testStore(t)
	sys := query.New(store, &hwsim.LocalFarm{Farm: hwsim.NewDefaultFarm(2)})
	a := NewScheduler(sys, NewEngine(nil), nil, fastActiveConfig())

	if err := a.TickOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := a.Status()
	if st.Ticks != 1 || st.Scheduled != 1 || st.Measured != 1 {
		t.Fatalf("status: %+v", st)
	}
	prec, ok, err := store.FindPlatformByName(hwsim.DatasetPlatform)
	if err != nil || !ok {
		t.Fatalf("platform row missing: ok=%v err=%v", ok, err)
	}
	n, err := store.LatencyCount(prec.ID)
	if err != nil || n != 1 {
		t.Fatalf("latency rows = %d, err=%v, want 1", n, err)
	}
}

// idleStub reports a fixed idle-device count.
type idleStub struct{ n int }

func (s idleStub) Idle(string) int { return s.n }

// TestSchedulerIdleGating: with a reporter showing zero idle capacity the
// tick backs off without stealing farm time from real queries.
func TestSchedulerIdleGating(t *testing.T) {
	store := testStore(t)
	sys := query.New(store, &hwsim.LocalFarm{Farm: hwsim.NewDefaultFarm(2)})
	a := NewScheduler(sys, NewEngine(nil), idleStub{n: 0}, fastActiveConfig())

	if err := a.TickOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := a.Status()
	if st.SkippedBusy != 1 || st.Scheduled != 0 || st.Measured != 0 {
		t.Fatalf("status: %+v", st)
	}

	// With capacity available the same scheduler proceeds.
	b := NewScheduler(sys, NewEngine(nil), idleStub{n: 2}, fastActiveConfig())
	if err := b.TickOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := b.Status(); st.Measured != 1 {
		t.Fatalf("status with idle capacity: %+v", st)
	}
}

// TestSchedulerCoverageDecay: measuring a graph must lower the coverage
// bonus of its kernel families, steering later ticks toward unseen families.
func TestSchedulerCoverageDecay(t *testing.T) {
	store := testStore(t)
	sys := query.New(store, &hwsim.LocalFarm{Farm: hwsim.NewDefaultFarm(2)})
	a := NewScheduler(sys, NewEngine(nil), nil, fastActiveConfig())

	g := models.BuildSqueezeNet(models.BaseSqueezeNet(1))
	before := a.score(g)
	a.noteMeasured(g)
	after := a.score(g)
	if !(after < before) {
		t.Fatalf("score did not decay: before=%v after=%v", before, after)
	}
}

// TestSchedulerUncertaintyScore: with a trained predictor the score includes
// head disagreement; a multi-head predictor must produce a non-negative
// disagreement term without breaking scoring.
func TestSchedulerUncertaintyScore(t *testing.T) {
	store := testStore(t)
	sys := query.New(store, &hwsim.LocalFarm{Farm: hwsim.NewDefaultFarm(2)})
	pred := tinyPredictor(t, 21, 8)
	a := NewScheduler(sys, NewEngine(pred), nil, fastActiveConfig())

	g := models.BuildSqueezeNet(models.BaseSqueezeNet(2))
	if s := a.score(g); s <= 0 {
		t.Fatalf("score = %v, want > 0", s)
	}
}

// TestSchedulerBackgroundLoop drives Start/Stop: ticks happen on their own
// and Stop cancels any in-flight measurement promptly.
func TestSchedulerBackgroundLoop(t *testing.T) {
	store := testStore(t)
	sys := query.New(store, &hwsim.LocalFarm{Farm: hwsim.NewDefaultFarm(2)})
	a := NewScheduler(sys, NewEngine(nil), nil, fastActiveConfig())
	a.Start()
	defer a.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for a.Status().Measured == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	a.Stop()
	if st := a.Status(); st.Measured == 0 {
		t.Fatalf("background loop never measured: %+v", st)
	}
}
