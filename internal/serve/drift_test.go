package serve

import (
	"encoding/json"
	"testing"

	"nnlqp/internal/hwsim"
)

// TestDriftProbeReportsPearsonAndCalibration: once a predictor is live, every
// poll scores it against the recent observe-predict window and publishes the
// three health figures — rolling MAPE, Pearson correlation and calibration
// ratio — even when no retrain trigger fires.
func TestDriftProbeReportsPearsonAndCalibration(t *testing.T) {
	store := testStore(t)
	seedMeasurements(t, store, hwsim.DatasetPlatform, 1, 12, 1)

	e := NewEngine(nil)
	cfg := fastRetrainConfig()
	cfg.MinNewRecords = 1000 // no count trigger: the probe must run regardless
	r := NewRetrainer(store, e, cfg)
	if swapped, err := r.CheckOnce(); err != nil || !swapped {
		t.Fatalf("bootstrap: swapped=%v err=%v", swapped, err)
	}

	// A no-trigger poll still probes the window.
	if swapped, err := r.CheckOnce(); err != nil || swapped {
		t.Fatalf("idle poll: swapped=%v err=%v", swapped, err)
	}
	st := r.Status()
	if st.LastRollingMAPE <= 0 {
		t.Fatalf("no rolling MAPE recorded: %+v", st)
	}
	if st.LastRollingPearson == 0 || st.LastRollingPearson < -1 || st.LastRollingPearson > 1 {
		t.Fatalf("rolling Pearson out of range or unset: %+v", st)
	}
	if st.LastCalibrationRatio <= 0 {
		t.Fatalf("calibration ratio unset: %+v", st)
	}

	// The platform drifts to 2× latencies: the predictor now systematically
	// under-predicts, so the calibration ratio (mean predicted / mean true)
	// must drop below its pre-drift value.
	before := st.LastCalibrationRatio
	seedMeasurements(t, store, hwsim.DatasetPlatform, 13, 8, 2)
	if _, err := r.CheckOnce(); err != nil {
		t.Fatal(err)
	}
	st = r.Status()
	if !(st.LastCalibrationRatio < before) {
		t.Fatalf("calibration ratio did not fall under drift: before=%v after=%v",
			before, st.LastCalibrationRatio)
	}

	// The figures ride along in the status JSON /engine serves.
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"last_rolling_mape", "last_rolling_pearson", "last_calibration_ratio"} {
		if _, ok := decoded[k]; !ok {
			t.Fatalf("status JSON missing %s: %s", k, data)
		}
	}
}
