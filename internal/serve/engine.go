// Package serve owns the live predictor on the serving path. Before this
// package existed, predictor ownership was smeared across layers — the HTTP
// server held it under an RWMutex, the query system held a separate fallback
// reference, the memo keyed entries by generation, and the /predict batcher
// captured a generation per window — so a live swap had four half-coordinated
// touch points and a window in which /query degradation could pair the old
// weights with the new generation.
//
// Engine collapses all of that into one atomically swappable handle: a single
// pointer load observes the predictor, its generation, and the holdout
// metrics it shipped with, so every consumer (the /predict handler, the
// query-path degradation fallback, the batcher, the stats endpoint) sees one
// consistent predictor state or the other — never a mix.
//
// On top of the handle this package closes the paper's evolving-database
// loop: Retrainer (retrainer.go) watches drift triggers and hot-swaps
// improved predictors trained off the hot path, and Scheduler (scheduler.go)
// spends idle farm capacity measuring the graphs the predictor is most
// uncertain about.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nnlqp/internal/core"
	"nnlqp/internal/onnx"
)

// engineState is the immutable unit an Engine publishes: a predictor plus
// the metadata it was installed with. Consumers load the pointer once and
// read freely; swaps publish a fresh state rather than mutating this one.
type engineState struct {
	pred    *core.Predictor // nil until the first trained predictor arrives
	seq     int64           // swap sequence number (0 = initial state)
	holdout core.Metrics    // holdout metrics at swap time (zero if unknown)
	reason  string
	at      time.Time
}

// SwapRecord is one entry of the Engine's swap history.
type SwapRecord struct {
	Seq          int64     `json:"seq"`
	Generation   uint64    `json:"generation"`
	Reason       string    `json:"reason"`
	HoldoutMAPE  float64   `json:"holdout_mape,omitempty"`
	HoldoutAcc10 float64   `json:"holdout_acc10,omitempty"`
	HoldoutN     int       `json:"holdout_n,omitempty"`
	At           time.Time `json:"at"`
}

// historyCap bounds the swap history kept in memory.
const historyCap = 64

// Engine is the single owner of the serving predictor. Reads (Snapshot,
// Predict, Generation) are one atomic pointer load; Swap publishes a new
// predictor for every consumer at once. It satisfies query.Fallback, so the
// degradation path and the /predict path can never disagree about which
// predictor is live.
type Engine struct {
	cur atomic.Pointer[engineState]

	mu      sync.Mutex // serializes swaps and guards history
	history []SwapRecord

	swaps   atomic.Int64
	rejects atomic.Int64
}

// NewEngine builds an engine, optionally pre-loaded with a predictor (nil is
// fine: the engine reports not Ready until the first Swap).
func NewEngine(pred *core.Predictor) *Engine {
	e := &Engine{}
	st := &engineState{pred: pred, at: time.Now()}
	if pred != nil {
		st.reason = "initial"
	}
	e.cur.Store(st)
	return e
}

// Current returns the live predictor (nil when none is installed).
func (e *Engine) Current() *core.Predictor { return e.cur.Load().pred }

// Ready reports whether a predictor is installed.
func (e *Engine) Ready() bool { return e.cur.Load().pred != nil }

// Snapshot returns the live predictor together with its generation, read
// from a single state load so the pair is always consistent across a
// concurrent Swap. The predictor is nil (and the generation 0) when none is
// installed.
func (e *Engine) Snapshot() (*core.Predictor, uint64) {
	st := e.cur.Load()
	if st.pred == nil {
		return nil, 0
	}
	return st.pred, st.pred.Generation()
}

// Generation returns the live predictor's generation (0 when none).
func (e *Engine) Generation() uint64 {
	_, gen := e.Snapshot()
	return gen
}

// Predict satisfies query.Fallback: a degraded /query answers from the same
// predictor state /predict serves.
func (e *Engine) Predict(g *onnx.Graph, platform string) (float64, error) {
	v, _, err := e.PredictWithGeneration(g, platform)
	return v, err
}

// PredictWithGeneration predicts and reports the generation the prediction
// was computed under. Predictor and generation come from one state load, so
// a concurrent Swap can never pair one predictor's value with the other's
// generation — the gap the old Server.SetPredictor/System.SetFallback pair
// had.
func (e *Engine) PredictWithGeneration(g *onnx.Graph, platform string) (float64, uint64, error) {
	st := e.cur.Load()
	if st.pred == nil {
		return 0, 0, fmt.Errorf("serve: no trained predictor loaded")
	}
	gen := st.pred.Generation()
	v, err := st.pred.Predict(g, platform)
	if err != nil {
		return 0, 0, err
	}
	return v, gen, nil
}

// Swap atomically installs pred (nil uninstalls) for every consumer at once
// and records the swap in the history. holdout carries the validation
// metrics the predictor shipped with (zero Metrics when unknown, e.g. a
// manually loaded file); reason labels the swap for the history and /stats.
// Old memo entries are orphaned by the generation change, not flushed.
func (e *Engine) Swap(pred *core.Predictor, holdout core.Metrics, reason string) SwapRecord {
	e.mu.Lock()
	defer e.mu.Unlock()
	prev := e.cur.Load()
	st := &engineState{pred: pred, seq: prev.seq + 1, holdout: holdout, reason: reason, at: time.Now()}
	rec := SwapRecord{
		Seq: st.seq, Reason: reason,
		HoldoutMAPE: holdout.MAPE, HoldoutAcc10: holdout.Acc10, HoldoutN: holdout.Count,
		At: st.at,
	}
	if pred != nil {
		rec.Generation = pred.Generation()
	}
	e.cur.Store(st)
	e.swaps.Add(1)
	e.history = append(e.history, rec)
	if len(e.history) > historyCap {
		e.history = e.history[len(e.history)-historyCap:]
	}
	return rec
}

// Reject records a candidate predictor that failed validation and was not
// installed (the retrainer calls it; /stats surfaces the count).
func (e *Engine) Reject() { e.rejects.Add(1) }

// History returns a copy of the swap history, oldest first.
func (e *Engine) History() []SwapRecord {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]SwapRecord(nil), e.history...)
}

// EngineStats is a point-in-time snapshot of the engine counters.
type EngineStats struct {
	Ready        bool    `json:"ready"`
	Generation   uint64  `json:"generation"`
	Swaps        int64   `json:"swaps"`
	Rejects      int64   `json:"swap_rejects"`
	LastReason   string  `json:"last_swap_reason,omitempty"`
	HoldoutMAPE  float64 `json:"holdout_mape,omitempty"`
	HoldoutAcc10 float64 `json:"holdout_acc10,omitempty"`
}

// Stats snapshots the engine counters and the live state's metadata.
func (e *Engine) Stats() EngineStats {
	st := e.cur.Load()
	out := EngineStats{
		Ready:        st.pred != nil,
		Swaps:        e.swaps.Load(),
		Rejects:      e.rejects.Load(),
		LastReason:   st.reason,
		HoldoutMAPE:  st.holdout.MAPE,
		HoldoutAcc10: st.holdout.Acc10,
	}
	if st.pred != nil {
		out.Generation = st.pred.Generation()
	}
	return out
}
