package serve

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"nnlqp/internal/core"
	"nnlqp/internal/db"
)

// TrainStore is the durable-tier surface the retrainer needs — snapshots and
// recent-record reads. *db.Store satisfies it; taking the interface keeps the
// retrainer wired to a storage role rather than owning a concrete store, so a
// serving process can hand the same store to several consumers (or a test can
// substitute a fake) without the retrainer knowing.
type TrainStore interface {
	FindPlatformByName(name string) (*db.PlatformRecord, bool, error)
	Platforms() ([]db.PlatformRecord, error)
	LatencyCount(platformID uint64) (int, error)
	RecentLatencies(platformID uint64, n int) ([]db.LatencyRecord, error)
	GetModel(id uint64) (*db.ModelRecord, bool, error)
	TrainingSnapshot(platformID uint64) (*db.TrainingSet, error)
}

// RetrainConfig controls the online retraining loop.
//
// The drift-trigger state machine (DESIGN.md §12):
//
//	idle ──count──▶ training ──validate──▶ swap ──▶ idle
//	  │  ──drift──▶    │                    └reject─▶ idle
//	  └─bootstrap─▶    └──error───────────────────▶ idle
//
// count fires when any platform accumulated MinNewRecords measurements since
// the last training run; drift fires when the live predictor's rolling MAPE
// over each platform's most recent DriftWindow records regresses past
// DriftMAPEFactor × its holdout MAPE at swap time; bootstrap fires when no
// predictor is installed and the database holds at least MinSamples records.
// A rejected candidate still consumes its trigger (the counts are advanced),
// so a plateaued database cannot spin the trainer hot.
type RetrainConfig struct {
	// Interval is the poll cadence of the background loop (Start).
	Interval time.Duration
	// MinNewRecords per platform since the last run arms the count trigger.
	MinNewRecords int
	// MinSamples is the smallest total training-set size worth training on.
	MinSamples int
	// HoldoutFrac is the validation split (core.SplitHoldout).
	HoldoutFrac float64
	// DriftWindow is how many recent records per platform the rolling-MAPE
	// drift probe scores.
	DriftWindow int
	// DriftMAPEFactor arms the drift trigger when rolling MAPE exceeds
	// holdout-MAPE-at-swap × factor.
	DriftMAPEFactor float64
	// Epochs / Hidden / Depth size the candidate predictor.
	Epochs int
	Hidden int
	Depth  int
	// Seed makes candidate training deterministic; each run offsets it by
	// the run counter so repeated retrains explore different shuffles.
	Seed int64
	// Workers caps gradient parallelism (<=0 = GOMAXPROCS).
	Workers int
	// Platforms restricts training to these platform names (empty =
	// every platform with records in the database).
	Platforms []string
}

// DefaultRetrainConfig returns the server's default online-retraining knobs.
func DefaultRetrainConfig() RetrainConfig {
	return RetrainConfig{
		Interval:        30 * time.Second,
		MinNewRecords:   50,
		MinSamples:      24,
		HoldoutFrac:     0.2,
		DriftWindow:     32,
		DriftMAPEFactor: 1.5,
		Epochs:          10,
		Hidden:          32,
		Depth:           2,
		Seed:            1,
	}
}

// WithDefaults returns a copy with every zero field set to its default.
func (c RetrainConfig) WithDefaults() RetrainConfig {
	d := DefaultRetrainConfig()
	if c.Interval <= 0 {
		c.Interval = d.Interval
	}
	if c.MinNewRecords <= 0 {
		c.MinNewRecords = d.MinNewRecords
	}
	if c.MinSamples <= 0 {
		c.MinSamples = d.MinSamples
	}
	if c.HoldoutFrac <= 0 || c.HoldoutFrac >= 1 {
		c.HoldoutFrac = d.HoldoutFrac
	}
	if c.DriftWindow <= 0 {
		c.DriftWindow = d.DriftWindow
	}
	if c.DriftMAPEFactor <= 1 {
		c.DriftMAPEFactor = d.DriftMAPEFactor
	}
	if c.Epochs <= 0 {
		c.Epochs = d.Epochs
	}
	if c.Hidden <= 0 {
		c.Hidden = d.Hidden
	}
	if c.Depth <= 0 {
		c.Depth = d.Depth
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// RetrainStatus is a snapshot of the retrainer's counters and last outcome.
type RetrainStatus struct {
	Runs              int64   `json:"runs"`
	Swaps             int64   `json:"swaps"`
	Rejects           int64   `json:"rejects"`
	CountTriggers     int64   `json:"count_triggers"`
	DriftTriggers     int64   `json:"drift_triggers"`
	BootstrapTriggers int64   `json:"bootstrap_triggers"`
	Training          bool    `json:"training"`
	LastTrigger       string  `json:"last_trigger,omitempty"`
	LastHoldoutMAPE   float64 `json:"last_holdout_mape,omitempty"`
	LastHoldoutAcc10  float64 `json:"last_holdout_acc10,omitempty"`
	LastRollingMAPE   float64 `json:"last_rolling_mape,omitempty"`
	// LastRollingPearson / LastCalibrationRatio are the drift probe's
	// companion figures over the same observe-predict window: correlation
	// catches a predictor whose ranking collapsed even while MAPE looks
	// tolerable, and the calibration ratio (mean predicted / mean true, 1.0 =
	// unbiased) catches a systematic scale drift MAPE averages away.
	LastRollingPearson   float64 `json:"last_rolling_pearson,omitempty"`
	LastCalibrationRatio float64 `json:"last_calibration_ratio,omitempty"`
	LastTrainSeconds     float64 `json:"last_train_seconds,omitempty"`
	LastError            string  `json:"last_error,omitempty"`
}

// Retrainer watches the evolving database and keeps the Engine's predictor
// fresh: when a drift trigger fires it trains a brand-new candidate on a
// consistent TrainingSnapshot off the hot path (the serving predictor is
// never fine-tuned in place — in-place training would expose torn weights to
// concurrent readers), validates it against a held-out split, and hot-swaps
// only when the candidate is at least as accurate as the incumbent on that
// same holdout.
type Retrainer struct {
	store  TrainStore
	engine *Engine
	cfg    RetrainConfig

	mu             sync.Mutex
	status         RetrainStatus
	trainedCounts  map[string]int // per-platform record count at last run
	swapMAPE       float64        // holdout MAPE of the live predictor at swap
	runSeed        int64          // increments per run for shuffle variety
	stopCh, doneCh chan struct{}
}

// NewRetrainer builds a retrainer over the store and engine. Call Start for
// the background loop, or CheckOnce to drive it manually (tests, CLIs).
func NewRetrainer(store TrainStore, engine *Engine, cfg RetrainConfig) *Retrainer {
	return &Retrainer{
		store:         store,
		engine:        engine,
		cfg:           cfg.WithDefaults(),
		trainedCounts: make(map[string]int),
	}
}

// Status snapshots the retrainer counters.
func (r *Retrainer) Status() RetrainStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// Start launches the background poll loop. Stop terminates it.
func (r *Retrainer) Start() {
	r.mu.Lock()
	if r.stopCh != nil {
		r.mu.Unlock()
		return
	}
	r.stopCh = make(chan struct{})
	r.doneCh = make(chan struct{})
	stop, done := r.stopCh, r.doneCh
	r.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(r.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			if _, err := r.CheckOnce(); err != nil {
				r.mu.Lock()
				r.status.LastError = err.Error()
				r.mu.Unlock()
			}
		}
	}()
}

// Stop terminates the background loop and waits for an in-flight run to
// finish (a half-trained candidate is simply discarded; the engine only ever
// observes complete, validated predictors).
func (r *Retrainer) Stop() {
	r.mu.Lock()
	stop, done := r.stopCh, r.doneCh
	r.stopCh, r.doneCh = nil, nil
	r.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// platformRecords pairs a platform with its current latency-record count.
type platformRecords struct {
	rec   db.PlatformRecord
	count int
}

// platforms resolves the training platform set: the configured names, or
// every platform the database has records for.
func (r *Retrainer) platforms() ([]platformRecords, error) {
	var recs []db.PlatformRecord
	if len(r.cfg.Platforms) > 0 {
		for _, name := range r.cfg.Platforms {
			p, ok, err := r.store.FindPlatformByName(name)
			if err != nil {
				return nil, err
			}
			if ok {
				recs = append(recs, *p)
			}
		}
	} else {
		all, err := r.store.Platforms()
		if err != nil {
			return nil, err
		}
		recs = all
	}
	out := make([]platformRecords, 0, len(recs))
	for _, p := range recs {
		n, err := r.store.LatencyCount(p.ID)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			out = append(out, platformRecords{rec: p, count: n})
		}
	}
	return out, nil
}

// decideTrigger inspects the database and the live predictor and names the
// trigger that should fire ("" = stay idle). Caller does not hold r.mu.
func (r *Retrainer) decideTrigger(plats []platformRecords) (string, float64) {
	total := 0
	for _, p := range plats {
		total += p.count
	}
	if !r.engine.Ready() {
		if total >= r.cfg.MinSamples {
			return "bootstrap", 0
		}
		return "", 0
	}
	r.mu.Lock()
	counts := r.trainedCounts
	swapMAPE := r.swapMAPE
	r.mu.Unlock()
	// Run the drift probe on every poll once a predictor is live (not only
	// when a drift trigger could fire): rolling MAPE, Pearson correlation and
	// the calibration ratio are the continuous health signals /engine exposes,
	// and a manually loaded predictor (swapMAPE == 0) deserves them too.
	rolling, probed := math.NaN(), false
	if m, err := r.driftProbe(plats); err == nil {
		rolling, probed = m, !math.IsNaN(m)
	}
	for _, p := range plats {
		if p.count-counts[p.rec.Name] >= r.cfg.MinNewRecords {
			return fmt.Sprintf("count:%s", p.rec.Name), 0
		}
	}
	if swapMAPE > 0 && probed && rolling > swapMAPE*r.cfg.DriftMAPEFactor {
		return fmt.Sprintf("drift:%.1f%%>%.1f%%", rolling, swapMAPE*r.cfg.DriftMAPEFactor), rolling
	}
	return "", 0
}

// driftProbe scores the live predictor against the most recent DriftWindow
// records of every training platform — the continuous observe-predict probe.
// It records rolling MAPE (the drift-trigger input) together with the Pearson
// correlation and calibration ratio over the same window, and returns the
// rolling MAPE.
func (r *Retrainer) driftProbe(plats []platformRecords) (float64, error) {
	pred := r.engine.Current()
	if pred == nil {
		return math.NaN(), nil
	}
	heads := make(map[string]bool)
	for _, h := range pred.Platforms() {
		heads[h] = true
	}
	var truths, preds []float64
	for _, p := range plats {
		if !heads[p.rec.Name] {
			continue
		}
		recs, err := r.store.RecentLatencies(p.rec.ID, r.cfg.DriftWindow)
		if err != nil {
			return 0, err
		}
		for _, rec := range recs {
			mrec, ok, err := r.store.GetModel(rec.ModelID)
			if err != nil || !ok {
				continue
			}
			v, err := pred.Predict(mrec.Graph, p.rec.Name)
			if err != nil {
				continue
			}
			truths = append(truths, rec.LatencyMS)
			preds = append(preds, v)
		}
	}
	if len(truths) == 0 {
		return math.NaN(), nil
	}
	m := core.MAPE(truths, preds)
	pearson := core.Pearson(truths, preds)
	calib := core.Calibration(truths, preds)
	r.mu.Lock()
	r.status.LastRollingMAPE = m
	if !math.IsNaN(pearson) {
		r.status.LastRollingPearson = pearson
	}
	if !math.IsNaN(calib) {
		r.status.LastCalibrationRatio = calib
	}
	r.mu.Unlock()
	return m, nil
}

// buildSamples decodes every platform's TrainingSnapshot into one sample
// set, ordered by (platform, record id) so the holdout split is stable.
func (r *Retrainer) buildSamples(plats []platformRecords) ([]core.Sample, error) {
	sorted := append([]platformRecords(nil), plats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].rec.ID < sorted[j].rec.ID })
	var samples []core.Sample
	for _, p := range sorted {
		ts, err := r.store.TrainingSnapshot(p.rec.ID)
		if err != nil {
			return nil, err
		}
		for _, rec := range ts.Records {
			mrec, ok := ts.Model(rec.ModelID)
			if !ok {
				return nil, fmt.Errorf("serve: latency record %d references missing model %d", rec.ID, rec.ModelID)
			}
			s, err := core.NewSample(mrec.Graph, rec.LatencyMS, p.rec.Name)
			if err != nil {
				return nil, err
			}
			samples = append(samples, s)
		}
	}
	return samples, nil
}

// candidateConfig sizes a fresh candidate predictor for one run.
func (r *Retrainer) candidateConfig(runSeed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Hidden = r.cfg.Hidden
	cfg.HeadHidden = r.cfg.Hidden
	cfg.Depth = r.cfg.Depth
	cfg.Epochs = r.cfg.Epochs
	cfg.Seed = r.cfg.Seed + runSeed
	cfg.Workers = r.cfg.Workers
	return cfg
}

// evalOn evaluates pred on the subset of samples whose platform it has a
// head for (an incumbent trained before a new platform appeared can still be
// compared fairly on the platforms it knows).
func evalOn(pred *core.Predictor, samples []core.Sample) (core.Metrics, bool) {
	heads := make(map[string]bool)
	for _, h := range pred.Platforms() {
		heads[h] = true
	}
	sub := make([]core.Sample, 0, len(samples))
	for _, s := range samples {
		if heads[s.Platform] {
			sub = append(sub, s)
		}
	}
	if len(sub) == 0 {
		return core.Metrics{}, false
	}
	m, err := pred.Evaluate(sub)
	if err != nil {
		return core.Metrics{}, false
	}
	return m, true
}

// CheckOnce runs one poll of the drift triggers and, when one fires, a full
// train → validate → swap/reject cycle. It returns whether a swap happened.
// The background loop calls it on every tick; tests and CLIs may drive it
// directly.
func (r *Retrainer) CheckOnce() (bool, error) {
	plats, err := r.platforms()
	if err != nil {
		return false, err
	}
	trigger, _ := r.decideTrigger(plats)
	if trigger == "" {
		return false, nil
	}
	r.mu.Lock()
	r.status.Runs++
	r.status.Training = true
	r.status.LastTrigger = trigger
	r.status.LastError = ""
	switch {
	case trigger == "bootstrap":
		r.status.BootstrapTriggers++
	case len(trigger) >= 5 && trigger[:5] == "count":
		r.status.CountTriggers++
	default:
		r.status.DriftTriggers++
	}
	r.runSeed++
	runSeed := r.runSeed
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.status.Training = false
		r.mu.Unlock()
	}()

	swapped, err := r.trainValidateSwap(plats, trigger, runSeed)
	if err != nil {
		r.mu.Lock()
		r.status.LastError = err.Error()
		r.mu.Unlock()
		return false, err
	}
	return swapped, nil
}

// trainValidateSwap is the training half of one run: snapshot → train a
// fresh candidate → validate on the holdout → swap only on improvement.
func (r *Retrainer) trainValidateSwap(plats []platformRecords, trigger string, runSeed int64) (bool, error) {
	start := time.Now()
	samples, err := r.buildSamples(plats)
	if err != nil {
		return false, err
	}
	if len(samples) < r.cfg.MinSamples {
		return false, nil
	}
	train, holdout := core.SplitHoldout(samples, r.cfg.HoldoutFrac)
	cand := core.New(r.candidateConfig(runSeed))
	if err := cand.Fit(train); err != nil {
		return false, err
	}
	var candM core.Metrics
	if len(holdout) > 0 {
		candM, err = cand.Evaluate(holdout)
		if err != nil {
			return false, err
		}
	}
	wall := time.Since(start)

	// Advance the trigger baseline whether or not the candidate ships:
	// a rejected candidate must not re-trigger on the same records forever.
	counts := make(map[string]int, len(plats))
	for _, p := range plats {
		counts[p.rec.Name] = p.count
	}

	// Validation gate: the incumbent (when there is one) is scored on the
	// same holdout; the candidate must be at least as good. NaN (empty or
	// degenerate holdout) swaps — there is nothing to compare against.
	if incumbent := r.engine.Current(); incumbent != nil && len(holdout) > 0 {
		if oldM, ok := evalOn(incumbent, holdout); ok && !math.IsNaN(oldM.MAPE) &&
			!math.IsNaN(candM.MAPE) && candM.MAPE > oldM.MAPE {
			r.engine.Reject()
			r.mu.Lock()
			r.status.Rejects++
			r.status.LastHoldoutMAPE = candM.MAPE
			r.status.LastHoldoutAcc10 = candM.Acc10
			r.status.LastTrainSeconds = wall.Seconds()
			r.trainedCounts = counts
			r.mu.Unlock()
			return false, nil
		}
	}

	r.engine.Swap(cand, candM, trigger)
	r.mu.Lock()
	r.status.Swaps++
	r.status.LastHoldoutMAPE = candM.MAPE
	r.status.LastHoldoutAcc10 = candM.Acc10
	r.status.LastTrainSeconds = wall.Seconds()
	r.trainedCounts = counts
	r.swapMAPE = candM.MAPE
	r.mu.Unlock()
	return true, nil
}
