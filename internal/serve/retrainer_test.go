package serve

import (
	"testing"
	"time"

	"nnlqp/internal/core"
	"nnlqp/internal/db"
	"nnlqp/internal/hwsim"
	"nnlqp/internal/models"
)

func testStore(t testing.TB) *db.Store {
	t.Helper()
	store, err := db.OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return store
}

// seedMeasurements inserts n measurements for distinct SqueezeNet batch
// variants (distinct input shapes → distinct graph hashes), labelled with
// scale × the simulator's true latency. Batch sizes start at startBatch so
// successive calls add fresh records instead of hitting the unique key.
func seedMeasurements(t testing.TB, store *db.Store, platform string, startBatch, n int, scale float64) uint64 {
	t.Helper()
	p, err := hwsim.PlatformByName(platform)
	if err != nil {
		t.Fatal(err)
	}
	prec, err := store.InsertPlatform(p.Name, p.Hardware, p.Software, p.DType)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		batch := startBatch + i
		g := models.BuildSqueezeNet(models.BaseSqueezeNet(batch))
		ms, err := p.TrueLatencyMS(g)
		if err != nil {
			t.Fatal(err)
		}
		rec := db.LatencyRecord{BatchSize: batch, LatencyMS: ms * scale, Runs: 50}
		if _, _, err := store.RecordMeasurement(g, prec.ID, rec); err != nil {
			t.Fatal(err)
		}
	}
	return prec.ID
}

func fastRetrainConfig() RetrainConfig {
	return RetrainConfig{
		Interval:      10 * time.Millisecond,
		MinNewRecords: 6,
		MinSamples:    10,
		HoldoutFrac:   0.25,
		DriftWindow:   8,
		Epochs:        5,
		Hidden:        16,
		Depth:         2,
		Seed:          7,
	}
}

// TestRetrainerBootstrapThenCount walks the trigger state machine: an empty
// engine bootstraps from the seeded database, stays idle while nothing new
// arrives, then retrains when a platform accumulates MinNewRecords fresh
// measurements.
func TestRetrainerBootstrapThenCount(t *testing.T) {
	store := testStore(t)
	seedMeasurements(t, store, hwsim.DatasetPlatform, 1, 12, 1)

	e := NewEngine(nil)
	r := NewRetrainer(store, e, fastRetrainConfig())

	swapped, err := r.CheckOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !swapped || !e.Ready() {
		t.Fatalf("bootstrap: swapped=%v ready=%v", swapped, e.Ready())
	}
	st := r.Status()
	if st.BootstrapTriggers != 1 || st.Runs != 1 || st.Swaps != 1 {
		t.Fatalf("status after bootstrap: %+v", st)
	}
	if st.LastHoldoutMAPE <= 0 {
		t.Fatalf("bootstrap reported no holdout MAPE: %+v", st)
	}
	gen1 := e.Generation()
	if gen1 == 0 {
		t.Fatal("generation still 0 after bootstrap swap")
	}

	// Nothing new: no trigger, no run.
	if swapped, err = r.CheckOnce(); err != nil || swapped {
		t.Fatalf("idle check: swapped=%v err=%v", swapped, err)
	}
	if st := r.Status(); st.Runs != 1 {
		t.Fatalf("idle check ran the trainer: %+v", st)
	}

	// Stream MinNewRecords fresh measurements → count trigger.
	seedMeasurements(t, store, hwsim.DatasetPlatform, 13, 6, 1)
	if _, err = r.CheckOnce(); err != nil {
		t.Fatal(err)
	}
	st = r.Status()
	if st.CountTriggers != 1 || st.Runs != 2 {
		t.Fatalf("status after count trigger: %+v", st)
	}
	// The run either shipped an improved predictor (generation advanced) or
	// was rejected by the holdout gate — both leave the engine consistent.
	if st.Swaps == 2 {
		if e.Generation() == gen1 {
			t.Fatal("swap reported but generation unchanged")
		}
	} else if st.Rejects != 1 || e.Generation() != gen1 {
		t.Fatalf("rejected run must keep the incumbent: %+v gen=%d want %d",
			st, e.Generation(), gen1)
	}

	// Either way the trigger baseline advanced: no immediate re-trigger.
	if swapped, err = r.CheckOnce(); err != nil || swapped {
		t.Fatalf("baseline not consumed: swapped=%v err=%v", swapped, err)
	}
	if st := r.Status(); st.Runs != 2 {
		t.Fatalf("baseline not consumed, extra run: %+v", st)
	}
}

// TestRetrainerHoldoutGateRejects pits a 1-epoch candidate against a
// well-trained incumbent on the same holdout: the gate must keep the
// incumbent and still advance the trigger baseline.
func TestRetrainerHoldoutGateRejects(t *testing.T) {
	store := testStore(t)
	seedMeasurements(t, store, hwsim.DatasetPlatform, 1, 16, 1)

	incumbent := tinyPredictor(t, 11, 12)
	e := NewEngine(incumbent)
	gen := e.Generation()

	cfg := fastRetrainConfig()
	cfg.Epochs = 1 // cripple the candidate
	r := NewRetrainer(store, e, cfg)
	// Incumbent installed and trainedCounts empty → count trigger fires.
	swapped, err := r.CheckOnce()
	if err != nil {
		t.Fatal(err)
	}
	st := r.Status()
	if swapped {
		// A 1-epoch candidate beating a 5-epoch incumbent would be a fluke;
		// treat it as a real failure so the gate logic stays honest.
		t.Fatalf("holdout gate shipped a crippled candidate: %+v", st)
	}
	if st.Rejects != 1 || e.Generation() != gen {
		t.Fatalf("reject must keep the incumbent: %+v gen=%d want %d", st, e.Generation(), gen)
	}
	if e.Stats().Rejects != 1 {
		t.Fatalf("engine reject counter: %+v", e.Stats())
	}
	// Baseline advanced even on reject: no tight retrain loop.
	if swapped, err = r.CheckOnce(); err != nil || swapped {
		t.Fatalf("re-trigger after reject: swapped=%v err=%v", swapped, err)
	}
	if st := r.Status(); st.Runs != 1 {
		t.Fatalf("re-trigger after reject: %+v", st)
	}
}

// TestRetrainerDriftTrigger: after a bootstrap swap, the platform's
// behaviour shifts (measurements land at 3× the latencies the predictor
// learned) — the rolling-MAPE probe must notice and retrain even though the
// new-record count stays below MinNewRecords.
func TestRetrainerDriftTrigger(t *testing.T) {
	store := testStore(t)
	seedMeasurements(t, store, hwsim.DatasetPlatform, 1, 12, 1)

	e := NewEngine(nil)
	cfg := fastRetrainConfig()
	cfg.MinNewRecords = 1000 // keep the count trigger out of the way
	cfg.DriftMAPEFactor = 1.5
	r := NewRetrainer(store, e, cfg)
	if swapped, err := r.CheckOnce(); err != nil || !swapped {
		t.Fatalf("bootstrap: swapped=%v err=%v", swapped, err)
	}

	// The platform drifts: a handful of fresh records at 3× latency.
	seedMeasurements(t, store, hwsim.DatasetPlatform, 13, 4, 3)
	if _, err := r.CheckOnce(); err != nil {
		t.Fatal(err)
	}
	st := r.Status()
	if st.DriftTriggers != 1 || st.Runs != 2 {
		t.Fatalf("drift did not trigger: %+v", st)
	}
	if st.LastRollingMAPE <= 0 {
		t.Fatalf("drift probe recorded no rolling MAPE: %+v", st)
	}
}

// TestRetrainerBackgroundLoop drives the Start/Stop lifecycle: the loop
// bootstraps a predictor from the database without any manual call.
func TestRetrainerBackgroundLoop(t *testing.T) {
	store := testStore(t)
	seedMeasurements(t, store, hwsim.DatasetPlatform, 1, 12, 1)

	e := NewEngine(nil)
	r := NewRetrainer(store, e, fastRetrainConfig())
	r.Start()
	defer r.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for !e.Ready() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !e.Ready() {
		t.Fatal("background loop never installed a predictor")
	}
	r.Stop() // idempotent with the deferred Stop
	if st := r.Status(); st.Swaps < 1 {
		t.Fatalf("status: %+v", st)
	}
}

// TestRetrainerTooFewSamples: below MinSamples nothing happens, even with an
// empty engine.
func TestRetrainerTooFewSamples(t *testing.T) {
	store := testStore(t)
	seedMeasurements(t, store, hwsim.DatasetPlatform, 1, 4, 1)

	e := NewEngine(nil)
	r := NewRetrainer(store, e, fastRetrainConfig())
	if swapped, err := r.CheckOnce(); err != nil || swapped {
		t.Fatalf("swapped=%v err=%v", swapped, err)
	}
	if e.Ready() {
		t.Fatal("engine gained a predictor from 4 samples")
	}
	if st := r.Status(); st.Runs != 0 {
		t.Fatalf("status: %+v", st)
	}
}

// TestSplitHoldoutDeterministic: the retrainer and nnlqp-train must agree on
// the split for the same snapshot.
func TestSplitHoldoutDeterministic(t *testing.T) {
	var samples []core.Sample
	for i := 0; i < 20; i++ {
		g := models.BuildSqueezeNet(models.BaseSqueezeNet(i + 1))
		s, err := core.NewSample(g, float64(i+1), hwsim.DatasetPlatform)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, s)
	}
	tr1, ho1 := core.SplitHoldout(samples, 0.25)
	tr2, ho2 := core.SplitHoldout(samples, 0.25)
	if len(tr1) != 15 || len(ho1) != 5 {
		t.Fatalf("split sizes: %d/%d", len(tr1), len(ho1))
	}
	for i := range ho1 {
		if ho1[i].LatencyMS != ho2[i].LatencyMS {
			t.Fatal("holdout split not deterministic")
		}
	}
	if len(tr2) != len(tr1) {
		t.Fatal("train split not deterministic")
	}
	// Tiny or disabled splits return everything as train.
	tr3, ho3 := core.SplitHoldout(samples[:3], 0.25)
	if len(tr3) != 3 || ho3 != nil {
		t.Fatalf("tiny split: %d/%d", len(tr3), len(ho3))
	}
}
