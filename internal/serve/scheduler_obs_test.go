package serve

import (
	"context"
	"testing"

	"nnlqp/internal/hwsim"
	"nnlqp/internal/models"
	"nnlqp/internal/query"
)

// TestSchedulerColdLogFallsBackToZoo: with no query traffic the observation
// log is empty, so every candidate comes from the static model zoo.
func TestSchedulerColdLogFallsBackToZoo(t *testing.T) {
	store := testStore(t)
	sys := query.New(store, &hwsim.LocalFarm{Farm: hwsim.NewDefaultFarm(2)})
	a := NewScheduler(sys, NewEngine(nil), nil, fastActiveConfig())

	if err := a.TickOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := a.Status()
	if st.LogCandidates != 0 || st.ZooCandidates == 0 {
		t.Fatalf("cold-log draw: %+v", st)
	}
}

// TestSchedulerDrawsFromQueryLog: graphs real traffic asked about on one
// platform become measurement candidates for another platform the database
// has no ground truth on — the scheduler samples the workload's observed
// distribution instead of only synthetic zoo variants.
func TestSchedulerDrawsFromQueryLog(t *testing.T) {
	plats := hwsim.PlatformNames()
	if len(plats) < 2 {
		t.Skip("needs two simulator platforms")
	}
	source, target := plats[0], plats[1]

	store := testStore(t)
	sys := query.New(store, &hwsim.LocalFarm{Farm: hwsim.NewDefaultFarm(2)})
	for b := 1; b <= 3; b++ {
		g := models.BuildSqueezeNet(models.BaseSqueezeNet(b))
		if _, err := sys.Query(context.Background(), g, source); err != nil {
			t.Fatal(err)
		}
	}
	if sys.ObservationCount() != 3 {
		t.Fatalf("observation log size = %d, want 3", sys.ObservationCount())
	}

	cfg := fastActiveConfig()
	cfg.Platforms = []string{target}
	a := NewScheduler(sys, NewEngine(nil), nil, cfg)
	if err := a.TickOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := a.Status()
	if st.LogCandidates == 0 {
		t.Fatalf("no candidates drawn from the query log: %+v", st)
	}
	if st.Measured == 0 {
		t.Fatalf("tick measured nothing: %+v", st)
	}
}

// TestSchedulerSkipsGraphsCachedOnTarget: an observed graph whose ground
// truth is already in the target platform's L1 is not worth re-measuring, so
// the log draw skips it and falls back to the zoo.
func TestSchedulerSkipsGraphsCachedOnTarget(t *testing.T) {
	store := testStore(t)
	sys := query.New(store, &hwsim.LocalFarm{Farm: hwsim.NewDefaultFarm(2)})
	g := models.BuildSqueezeNet(models.BaseSqueezeNet(1))
	if _, err := sys.Query(context.Background(), g, hwsim.DatasetPlatform); err != nil {
		t.Fatal(err)
	}

	a := NewScheduler(sys, NewEngine(nil), nil, fastActiveConfig())
	if err := a.TickOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := a.Status()
	if st.LogCandidates != 0 {
		t.Fatalf("cached-on-target graph drawn from log: %+v", st)
	}
	if st.ZooCandidates == 0 {
		t.Fatalf("no zoo fallback: %+v", st)
	}
}
