package serve

import (
	"sync"
	"testing"
	"time"

	"nnlqp/internal/core"
	"nnlqp/internal/hwsim"
	"nnlqp/internal/models"
	"nnlqp/internal/onnx"
)

// tinyPredictor trains a minimal predictor on n SqueezeNet graphs labelled
// with the simulator's true latency, deterministic in seed.
func tinyPredictor(t testing.TB, seed int64, n int) *core.Predictor {
	t.Helper()
	p, err := hwsim.PlatformByName(hwsim.DatasetPlatform)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Hidden, cfg.Depth, cfg.HeadHidden, cfg.Epochs = 16, 2, 16, 5
	cfg.Seed = seed
	pred := core.New(cfg)
	var samples []core.Sample
	for i := 0; i < n; i++ {
		g := models.BuildSqueezeNet(models.BaseSqueezeNet(i + 1))
		ms, err := p.TrueLatencyMS(g)
		if err != nil {
			t.Fatal(err)
		}
		s, err := core.NewSample(g, ms, p.Name)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, s)
	}
	if err := pred.Fit(samples); err != nil {
		t.Fatal(err)
	}
	return pred
}

func TestEngineNotReady(t *testing.T) {
	e := NewEngine(nil)
	if e.Ready() {
		t.Fatal("empty engine reports Ready")
	}
	if pred, gen := e.Snapshot(); pred != nil || gen != 0 {
		t.Fatalf("Snapshot() = %v, %d, want nil, 0", pred, gen)
	}
	g := models.BuildSqueezeNet(models.BaseSqueezeNet(1))
	if _, err := e.Predict(g, hwsim.DatasetPlatform); err == nil {
		t.Fatal("Predict on an empty engine should error")
	}
	if st := e.Stats(); st.Ready || st.Generation != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestEngineSwapAtomicity is the -race regression for the old
// Server.SetPredictor gap: s.pred and sys.SetFallback updated non-atomically,
// so a concurrent degraded /query could pair one predictor's value with the
// other's generation. With the Engine, every (value, generation) pair a
// reader observes must belong to exactly one predictor.
func TestEngineSwapAtomicity(t *testing.T) {
	predA := tinyPredictor(t, 1, 8)
	predB := tinyPredictor(t, 2, 8)
	g := models.BuildSqueezeNet(models.BaseSqueezeNet(1))

	want := map[uint64]float64{}
	for _, p := range []*core.Predictor{predA, predB} {
		v, err := p.Predict(g, hwsim.DatasetPlatform)
		if err != nil {
			t.Fatal(err)
		}
		want[p.Generation()] = v
	}

	e := NewEngine(predA)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, gen, err := e.PredictWithGeneration(g, hwsim.DatasetPlatform)
				if err != nil {
					t.Errorf("predict: %v", err)
					return
				}
				exp, ok := want[gen]
				if !ok {
					t.Errorf("generation %d belongs to neither predictor", gen)
					return
				}
				if v != exp {
					t.Errorf("gen %d: value %v, want %v — torn (value, generation) pair", gen, v, exp)
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		p := predA
		if i%2 == 0 {
			p = predB
		}
		e.Swap(p, core.Metrics{}, "test")
	}
	close(stop)
	wg.Wait()

	if got := e.Stats().Swaps; got != 200 {
		t.Fatalf("swaps = %d, want 200", got)
	}
}

func TestEngineSwapHistory(t *testing.T) {
	pred := tinyPredictor(t, 3, 6)
	e := NewEngine(nil)
	for i := 0; i < historyCap+7; i++ {
		e.Swap(pred, core.Metrics{MAPE: float64(i), Acc10: 90, Count: 5}, "loop")
	}
	h := e.History()
	if len(h) != historyCap {
		t.Fatalf("history length = %d, want %d", len(h), historyCap)
	}
	for i := 1; i < len(h); i++ {
		if h[i].Seq != h[i-1].Seq+1 {
			t.Fatalf("history seq not monotonic at %d: %d after %d", i, h[i].Seq, h[i-1].Seq)
		}
	}
	last := h[len(h)-1]
	if last.Seq != int64(historyCap+7) || last.Generation != pred.Generation() {
		t.Fatalf("last record: %+v", last)
	}
	if last.HoldoutMAPE != float64(historyCap+6) {
		t.Fatalf("last holdout MAPE = %v", last.HoldoutMAPE)
	}
}

func TestEngineRejectCounter(t *testing.T) {
	e := NewEngine(nil)
	e.Reject()
	e.Reject()
	if st := e.Stats(); st.Rejects != 2 || st.Swaps != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestEngineFallbackInterface(t *testing.T) {
	// Engine must keep satisfying the query-path fallback shape; a compile
	// check plus a behavioural one.
	var f interface {
		Predict(*onnx.Graph, string) (float64, error)
		Ready() bool
	} = NewEngine(nil)
	if f.Ready() {
		t.Fatal("ready")
	}
	pred := tinyPredictor(t, 4, 6)
	e := NewEngine(pred)
	g := models.BuildSqueezeNet(models.BaseSqueezeNet(1))
	v, err := e.Predict(g, hwsim.DatasetPlatform)
	if err != nil || v <= 0 {
		t.Fatalf("Predict = %v, %v", v, err)
	}
	direct, _ := pred.Predict(g, hwsim.DatasetPlatform)
	if v != direct {
		t.Fatalf("engine answer %v differs from predictor answer %v", v, direct)
	}
}

func TestEngineSwapRecordTimestamps(t *testing.T) {
	pred := tinyPredictor(t, 5, 6)
	e := NewEngine(nil)
	before := time.Now()
	rec := e.Swap(pred, core.Metrics{}, "manual")
	if rec.At.Before(before.Add(-time.Second)) {
		t.Fatalf("swap timestamp %v predates the swap", rec.At)
	}
	if rec.Reason != "manual" || rec.Seq != 1 {
		t.Fatalf("record: %+v", rec)
	}
}
