package serve

import (
	"testing"

	"nnlqp/internal/core"
	"nnlqp/internal/hwsim"
	"nnlqp/internal/models"
)

// BenchmarkEngineSwap measures the hot-swap itself — the pause a live
// server pays to install a retrained predictor (readers never block; this
// is the writer-side cost).
func BenchmarkEngineSwap(b *testing.B) {
	predA := tinyPredictor(b, 1, 6)
	predB := tinyPredictor(b, 2, 6)
	e := NewEngine(predA)
	m := core.Metrics{MAPE: 10, Acc10: 90, Count: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			e.Swap(predB, m, "bench")
		} else {
			e.Swap(predA, m, "bench")
		}
	}
}

// BenchmarkEngineSnapshot measures the reader-side cost every /predict pays
// to observe the (predictor, generation) pair.
func BenchmarkEngineSnapshot(b *testing.B) {
	e := NewEngine(tinyPredictor(b, 3, 6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pred, gen := e.Snapshot(); pred == nil || gen == 0 {
			b.Fatal("snapshot lost the predictor")
		}
	}
}

// BenchmarkRetrainCycle measures one full bootstrap retrain — snapshot,
// train, validate, swap — the wall time the background loop spends per
// evolution step on a small database.
func BenchmarkRetrainCycle(b *testing.B) {
	store := testStore(b)
	seedMeasurements(b, store, hwsim.DatasetPlatform, 1, 12, 1)
	cfg := fastRetrainConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine(nil)
		r := NewRetrainer(store, e, cfg)
		swapped, err := r.CheckOnce()
		if err != nil {
			b.Fatal(err)
		}
		if !swapped {
			b.Fatal("bootstrap did not swap")
		}
	}
}

// BenchmarkSchedulerScore measures the per-candidate uncertainty scoring
// cost (head fan-out + kernelization).
func BenchmarkSchedulerScore(b *testing.B) {
	a := NewScheduler(nil, NewEngine(tinyPredictor(b, 4, 6)), nil, fastActiveConfig())
	g := models.BuildSqueezeNet(models.BaseSqueezeNet(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := a.score(g); s < 0 {
			b.Fatal("negative score")
		}
	}
}
