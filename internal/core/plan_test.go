package core

import (
	"math/rand"
	"testing"

	"nnlqp/internal/hwsim"
	"nnlqp/internal/models"
)

// TestPredictPlannedBitIdenticalAcrossAblations pins the compiled-plan path
// (Predict: cached normalized features + CSR + stacked weights) against the
// per-request path (PredictSample: clone, normalize, flatten every call),
// bitwise, under every ablation flag — both on the plan-building first call
// and on plan-cache hits, and again after a FineTune invalidates the plan
// generation.
func TestPredictPlannedBitIdenticalAcrossAblations(t *testing.T) {
	mutate := []func(*Config){
		func(c *Config) {},                         // full NNLP
		func(c *Config) { c.UseNodeFeats = false }, // wo/Fv0
		func(c *Config) { c.UseGNN = false },       // wo/gnn
		func(c *Config) { c.UseStatic = false },    // wo/static
		func(c *Config) { c.MeanPool = false },
		func(c *Config) { c.NoFinalNorm = false },
		func(c *Config) { c.LogTarget = false },
	}
	train := buildSamples(t, []string{models.FamilySqueezeNet}, 8, hwsim.DatasetPlatform, 51)
	rng := rand.New(rand.NewSource(52))
	g, err := models.Variant(models.FamilySqueezeNet, rng, 1)
	if err != nil {
		t.Fatal(err)
	}

	for mi, mut := range mutate {
		cfg := quickConfig()
		cfg.Epochs = 2
		mut(&cfg)
		p := New(cfg)
		if err := p.Fit(train); err != nil {
			t.Fatalf("config %d: %v", mi, err)
		}
		gf, err := p.Extract(g)
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.PredictSample(gf, hwsim.DatasetPlatform)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 3; pass++ { // build, then two cache hits
			got, err := p.Predict(g, hwsim.DatasetPlatform)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("config %d pass %d: planned %v != sample %v (must be bit-identical)", mi, pass, got, want)
			}
		}

		// A weight change orphans the plan; the rebuilt one must track the
		// new weights, again bitwise.
		if err := p.FineTune(train[:4], 1); err != nil {
			t.Fatal(err)
		}
		want2, err := p.PredictSample(gf, hwsim.DatasetPlatform)
		if err != nil {
			t.Fatal(err)
		}
		got2, err := p.Predict(g, hwsim.DatasetPlatform)
		if err != nil {
			t.Fatal(err)
		}
		if got2 != want2 {
			t.Fatalf("config %d: post-FineTune planned %v != sample %v", mi, got2, want2)
		}
		if mi == 0 && got2 == want && want2 == want {
			t.Log("fine-tune produced identical predictions; stale-plan coverage is weak for this seed")
		}
	}
}

// TestPlanCacheStaleAndEvict unit-tests the sharded plan LRU: generation
// mismatches read as misses, same-hash puts replace in place, and overflow
// evicts the least-recently-used entry of the shard.
func TestPlanCacheStaleAndEvict(t *testing.T) {
	c := newPlanCache(planShards) // capacity 1 per shard
	if c.get(7, 1) != nil {
		t.Fatal("empty cache must miss")
	}
	p1 := &graphPlan{gen: 1, hash: 7}
	c.put(p1)
	if c.get(7, 1) != p1 {
		t.Fatal("want the stored plan back")
	}
	if c.get(7, 2) != nil {
		t.Fatal("a generation-1 plan must read as a miss under generation 2")
	}
	// Same hash, new generation: replaced in place, not duplicated.
	p2 := &graphPlan{gen: 2, hash: 7}
	c.put(p2)
	if c.get(7, 2) != p2 || c.get(7, 1) != nil {
		t.Fatal("same-hash put must replace the stale plan")
	}
	// A second hash on the same shard evicts the LRU victim (capacity 1).
	other := uint64(7 + planShards)
	c.put(&graphPlan{gen: 2, hash: other})
	if c.get(7, 2) != nil {
		t.Fatal("capacity-1 shard must have evicted the older entry")
	}
	if c.get(other, 2) == nil {
		t.Fatal("newest entry must survive eviction")
	}
}

// TestPredictPlannedSteadyStateAllocs pins the planned hot path: once the
// plan and pools are warm, Predict (hash → plan → fused forward) must not
// allocate.
func TestPredictPlannedSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool intentionally bypasses its cache under -race, so alloc counts are meaningless")
	}
	train := buildSamples(t, []string{models.FamilySqueezeNet}, 10, hwsim.DatasetPlatform, 42)
	cfg := quickConfig()
	cfg.Epochs = 2
	p := New(cfg)
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(53))
	g, err := models.Variant(models.FamilySqueezeNet, rng, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Predict(g, hwsim.DatasetPlatform); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := p.Predict(g, hwsim.DatasetPlatform); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("planned Predict allocates %.1f objects/op in steady state, want 0", avg)
	}
}

// BenchmarkPredictPlanned measures the full Predict entry point on a warm
// plan cache — the serving path for a known graph on a platform/generation
// the prediction memo has not seen (its complement, BenchmarkPredictSteadyState,
// measures the plan-less PredictSample).
func BenchmarkPredictPlanned(b *testing.B) {
	train := buildSamples(b, []string{models.FamilySqueezeNet}, 10, hwsim.DatasetPlatform, 43)
	cfg := quickConfig()
	cfg.Epochs = 2
	p := New(cfg)
	if err := p.Fit(train); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(54))
	g, err := models.Variant(models.FamilySqueezeNet, rng, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Predict(g, hwsim.DatasetPlatform); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Predict(g, hwsim.DatasetPlatform); err != nil {
			b.Fatal(err)
		}
	}
}
