package core

import "sync"

// PredictMemo caches predictor outputs keyed by (graph hash, platform,
// predictor generation). Because Predictor generations are process-unique
// and bump on every weight change (Fit/FineTune entry and exit, reload), a
// stale entry can never match a live predictor: invalidation is implicit in
// the key, no flush call exists or is needed. The memo is a sharded LRU so
// concurrent serving goroutines contend only per shard.
type PredictMemo struct {
	shards []memoShard
	mask   uint64
	cap    int // per-shard capacity
}

// DefaultMemoEntries is the default total capacity of a PredictMemo.
const DefaultMemoEntries = 4096

const memoShards = 16

// memoKey identifies one cached prediction. Generation is part of the key,
// not a validity check: a predictor swap or fine-tune changes the generation
// and thereby orphans (rather than corrupts) old entries, which age out of
// the LRU naturally.
type memoKey struct {
	Hash       uint64
	Platform   string
	Generation uint64
}

type memoEntry struct {
	key        memoKey
	latencyMS  float64
	prev, next *memoEntry // intrusive LRU list (head = most recent)
}

type memoShard struct {
	mu         sync.Mutex
	entries    map[memoKey]*memoEntry
	head, tail *memoEntry
	hits       uint64
	misses     uint64
	evictions  uint64
}

// MemoStats is a point-in-time snapshot of memo counters.
type MemoStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Size      int
}

// NewPredictMemo builds a memo holding up to entries predictions in total
// (<=0 → DefaultMemoEntries). Capacity is split evenly across shards.
func NewPredictMemo(entries int) *PredictMemo {
	if entries <= 0 {
		entries = DefaultMemoEntries
	}
	perShard := (entries + memoShards - 1) / memoShards
	m := &PredictMemo{shards: make([]memoShard, memoShards), mask: memoShards - 1, cap: perShard}
	for i := range m.shards {
		m.shards[i].entries = make(map[memoKey]*memoEntry)
	}
	return m
}

func (m *PredictMemo) shard(hash uint64) *memoShard {
	// Mix the high bits in: graph hashes are FNV-like and well distributed,
	// but cheap insurance against clustered low bits.
	return &m.shards[(hash^hash>>32)&m.mask]
}

// Get returns the cached prediction for (hash, platform, generation).
func (m *PredictMemo) Get(hash uint64, platform string, generation uint64) (float64, bool) {
	k := memoKey{Hash: hash, Platform: platform, Generation: generation}
	s := m.shard(hash)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok {
		s.misses++
		return 0, false
	}
	s.hits++
	s.moveToFront(e)
	return e.latencyMS, true
}

// Put records a prediction computed under the given generation. Callers must
// read the generation before running the prediction, so a weight change that
// races the prediction lands the result under the old (now unreachable)
// generation instead of the new one.
func (m *PredictMemo) Put(hash uint64, platform string, generation uint64, latencyMS float64) {
	k := memoKey{Hash: hash, Platform: platform, Generation: generation}
	s := m.shard(hash)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[k]; ok {
		e.latencyMS = latencyMS
		s.moveToFront(e)
		return
	}
	e := &memoEntry{key: k, latencyMS: latencyMS}
	s.entries[k] = e
	s.pushFront(e)
	if len(s.entries) > m.cap {
		victim := s.tail
		s.unlink(victim)
		delete(s.entries, victim.key)
		s.evictions++
	}
}

// Stats sums counters across shards.
func (m *PredictMemo) Stats() MemoStats {
	var st MemoStats
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Size += len(s.entries)
		s.mu.Unlock()
	}
	return st
}

// Len returns the number of cached predictions.
func (m *PredictMemo) Len() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// pushFront links e as the most-recently-used entry. Callers hold mu.
func (s *memoShard) pushFront(e *memoEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// unlink removes e from the LRU list. Callers hold mu.
func (s *memoShard) unlink(e *memoEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront marks e most recently used. Callers hold mu.
func (s *memoShard) moveToFront(e *memoEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
