// Package core implements NNLP, the paper's primary contribution (§6): a
// latency predictor built on the unified graph embedding — a shared
// GraphSAGE backbone f(;α) that encodes any ONNX graph, sum-pooling readout
// concatenated with the graph's static features (Eq. 5), and per-platform
// prediction heads g(;β_P) trained jointly (Algorithm 1). Transfer learning
// for unseen structures, unseen platforms and new tasks (Fig. 5) reuses the
// shared backbone and fine-tunes.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"nnlqp/internal/feats"
	"nnlqp/internal/gnn"
	"nnlqp/internal/graphhash"
	"nnlqp/internal/onnx"
	"nnlqp/internal/tensor"
	"nnlqp/internal/train"
)

// Config controls predictor architecture and training.
type Config struct {
	// Hidden is the SAGE layer width; Depth the number of SAGE layers (the
	// paper's d).
	Hidden int
	Depth  int
	// HeadHidden is the FC width of each prediction head; Dropout its
	// dropout probability.
	HeadHidden int
	Dropout    float64
	// LR / Epochs / BatchSize follow §8.1 (Adam, lr=0.001, batch 16).
	LR        float64
	Epochs    int
	BatchSize int
	// Seed makes initialization and shuffling deterministic.
	Seed int64
	// Workers caps the goroutines computing per-sample gradients within a
	// batch and the fan-out of read paths (<=0 → GOMAXPROCS). Training
	// results are bit-identical for any value.
	Workers int
	// ElemSize is the tensor element width in bytes used when extracting
	// features from a raw graph (<=0 → 4, fp32).
	ElemSize int
	// LogTarget regresses log-latency instead of raw latency. Latencies in
	// the fleet span three orders of magnitude, so this is on by default;
	// the ablation bench compares both. (Design decision documented in
	// DESIGN.md.)
	LogTarget bool

	// RelativeLoss weights each sample's squared error by 1/y², turning
	// the MSE into a relative (MAPE-aligned) objective. Useful with
	// LogTarget=false, where raw-latency MSE would be dominated by the
	// largest models.
	RelativeLoss bool

	// EarlyStop holds out 10% of the training set as a validation split,
	// tracks validation MSE per epoch, and restores the best-epoch weights
	// at the end of training. Disabled automatically for tiny sets.
	EarlyStop bool

	// NoFinalNorm skips the L2 normalization on the last SAGE layer so the
	// sum readout can carry per-node magnitudes (latency is close to
	// additive over operators).
	NoFinalNorm bool

	// MeanPool divides the Eq. 5 sum readout by the node count. The paper
	// uses a plain sum; at small training scales the sum's node-count-
	// proportional magnitude extrapolates badly to unseen families, so the
	// mean is the default here (graph size information still reaches the
	// head through F_G^static). The ablation bench compares both; see
	// DESIGN.md.
	MeanPool bool

	// Ablation switches (Table 4). All true for the full NNLP.
	UseNodeFeats bool // false = wo/Fv0: predict from static features only
	UseGNN       bool // false = wo/gnn: node features pooled directly
	UseStatic    bool // false = wo/F_G^static: no static concat
}

// DefaultConfig returns the full-NNLP configuration at a size that trains
// in seconds-to-minutes on a CPU.
func DefaultConfig() Config {
	return Config{
		Hidden: 48, Depth: 3, HeadHidden: 48, Dropout: 0.05,
		LR: 1e-3, Epochs: 30, BatchSize: 16, Seed: 1, ElemSize: 4,
		LogTarget: true, MeanPool: true, NoFinalNorm: true, EarlyStop: true,
		UseNodeFeats: true, UseGNN: true, UseStatic: true,
	}
}

// elemSize resolves the effective tensor element width (old gob snapshots
// carry a zero value).
func (c Config) elemSize() int {
	if c.ElemSize > 0 {
		return c.ElemSize
	}
	return 4
}

// Sample is one training/evaluation record: a model (pre-extracted
// features), its measured latency, and the platform it was measured on —
// the (G_i, y_i, p_i) triple of Algorithm 1.
type Sample struct {
	GF        *feats.GraphFeatures
	LatencyMS float64
	Platform  string
}

// NewSample extracts features from a graph.
func NewSample(g *onnx.Graph, latencyMS float64, platform string) (Sample, error) {
	gf, err := feats.Extract(g, 4)
	if err != nil {
		return Sample{}, err
	}
	return Sample{GF: gf, LatencyMS: latencyMS, Platform: platform}, nil
}

// targetStats holds per-platform target normalization.
type targetStats struct {
	Mean float64
	Std  float64
}

// generations hands out process-unique predictor generations. Global (not
// per-predictor) so that two different predictor instances can never share a
// generation: a memo keyed by generation stays correct across hot predictor
// swaps, not just across fine-tunes of one instance.
var generations atomic.Uint64

// Predictor is the NNLP model.
type Predictor struct {
	cfg   Config
	enc   *gnn.Encoder
	heads map[string]*gnn.Head
	norm  *feats.Normalizer
	tgt   map[string]targetStats
	rng   *rand.Rand
	opt   *tensor.Adam

	// gen is the predictor's generation: a process-unique value bumped
	// whenever the weights change (Fit/FineTune entry and exit, Load).
	// Downstream memos key cached predictions by it, so a reload or
	// fine-tune invalidates them implicitly instead of by manual flush.
	gen atomic.Uint64

	// infPool recycles per-goroutine inference state (scratch arena +
	// feature clone buffer) so steady-state Predict allocates nothing.
	infPool sync.Pool

	// batchPool recycles per-goroutine batched-inference workspaces
	// (packing buffers + scratch) so steady-state PredictBatch allocates
	// nothing; see batch.go.
	batchPool sync.Pool

	// wplan caches the encoder's stacked [W1;W2] fused-inference weights,
	// rebuilt once per generation; plans caches per-graph compiled request
	// state (normalized features + CSR adjacency). See plan.go.
	wplan   atomic.Pointer[weightPlan]
	wplanMu sync.Mutex
	plans   *planCache

	// epochHook observes per-epoch training metrics. Not serialized.
	epochHook func(train.EpochMetrics)
}

// predictState is one goroutine's pooled inference workspace.
type predictState struct {
	sc  *tensor.Scratch
	gf  *feats.GraphFeatures
	csr gnn.CSR
}

// Generation returns the predictor's current generation. Values are unique
// across all predictor instances in the process and strictly increase on
// every weight change, so (graphhash, platform, generation) is a sound memo
// key for cached predictions.
func (p *Predictor) Generation() uint64 { return p.gen.Load() }

// bumpGeneration moves the predictor to a fresh process-unique generation.
func (p *Predictor) bumpGeneration() { p.gen.Store(generations.Add(1)) }

// SetEpochHook registers a callback invoked after every training epoch
// (progress logging, convergence tracking). Pass nil to clear it. The hook is
// not part of the serialized model state.
func (p *Predictor) SetEpochHook(fn func(train.EpochMetrics)) { p.epochHook = fn }

// New creates an untrained predictor.
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:   cfg,
		heads: make(map[string]*gnn.Head),
		tgt:   make(map[string]targetStats),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		opt:   tensor.NewAdam(cfg.LR),
		plans: newPlanCache(defaultPlanEntries),
	}
	p.bumpGeneration()
	p.infPool.New = func() any {
		return &predictState{sc: tensor.NewScratch(), gf: &feats.GraphFeatures{}}
	}
	if cfg.UseGNN && cfg.UseNodeFeats {
		if cfg.NoFinalNorm {
			p.enc = gnn.NewEncoderNoFinalNorm(feats.FeatureDim, cfg.Hidden, cfg.Depth, p.rng)
		} else {
			p.enc = gnn.NewEncoder(feats.FeatureDim, cfg.Hidden, cfg.Depth, p.rng)
		}
	}
	return p
}

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Platforms lists platforms the predictor has heads for.
func (p *Predictor) Platforms() []string {
	out := make([]string, 0, len(p.heads))
	for name := range p.heads {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// headInputDim is the embedding width fed to each head, which depends on
// the ablation configuration.
func (p *Predictor) headInputDim() int {
	dim := 0
	switch {
	case !p.cfg.UseNodeFeats:
		// wo/Fv0: static features only.
	case p.cfg.UseGNN:
		dim = p.cfg.Hidden
	default:
		// wo/gnn: raw node features pooled.
		dim = feats.FeatureDim
	}
	if p.cfg.UseStatic {
		dim += feats.StaticDim
	}
	if dim == 0 {
		// Degenerate double-ablation; keep the head well-formed.
		dim = feats.StaticDim
	}
	return dim
}

// head returns (creating if needed) the head for a platform.
func (p *Predictor) head(platform string) *gnn.Head {
	h, ok := p.heads[platform]
	if !ok {
		h = gnn.NewHead("head."+platform, p.headInputDim(), p.cfg.HeadHidden, p.cfg.Dropout, p.rng)
		p.heads[platform] = h
	}
	return h
}

// allParams returns every parameter in the model.
func (p *Predictor) allParams() []*tensor.Param {
	var ps []*tensor.Param
	if p.enc != nil {
		ps = append(ps, p.enc.Params()...)
	}
	for _, name := range p.Platforms() {
		ps = append(ps, p.heads[name].Params()...)
	}
	return ps
}

// embedCaches holds the forward state of one sample for backprop.
type embedCaches struct {
	gf     *feats.GraphFeatures // normalized copy
	encC   *gnn.EncCache
	pooled *tensor.Matrix
	headIn *tensor.Matrix
}

// embed computes the head input for one (already normalized) sample, drawing
// matrix intermediates from sc (nil allocates). It only reads shared state,
// so concurrent samples may run it against distinct scratch arenas.
func (p *Predictor) embed(gf *feats.GraphFeatures, sc *tensor.Scratch) *embedCaches {
	c := &embedCaches{gf: gf}
	var parts []float64
	switch {
	case !p.cfg.UseNodeFeats:
		// static only
	case p.cfg.UseGNN:
		h, ec := p.enc.ForwardScratch(gf.X, gf.Adj, sc)
		c.encC = ec
		c.pooled = gnn.SumPoolScratch(h, sc)
		if p.cfg.MeanPool && h.Rows > 0 {
			c.pooled.Scale(1 / float64(h.Rows))
		}
		parts = append(parts, c.pooled.Row(0)...)
	default:
		c.pooled = gnn.SumPoolScratch(gf.X, sc)
		if p.cfg.MeanPool && gf.X.Rows > 0 {
			c.pooled.Scale(1 / float64(gf.X.Rows))
		}
		parts = append(parts, c.pooled.Row(0)...)
	}
	if p.cfg.UseStatic || len(parts) == 0 {
		parts = append(parts, gf.Static...)
	}
	c.headIn = sc.Get(1, len(parts))
	copy(c.headIn.Row(0), parts)
	return c
}

// encodeTarget maps a latency to the regression target.
func (p *Predictor) encodeTarget(latencyMS float64, platform string) float64 {
	y := latencyMS
	if p.cfg.LogTarget {
		y = math.Log(math.Max(latencyMS, 1e-9))
	}
	ts := p.tgt[platform]
	return (y - ts.Mean) / ts.Std
}

// decodeTarget inverts encodeTarget. The normalized prediction is clamped
// to ±4 training-set standard deviations: an out-of-distribution graph can
// push the head far outside the fitted range, and exponentiating an
// unbounded extrapolation would turn a bad prediction into an absurd one.
func (p *Predictor) decodeTarget(t float64, platform string) float64 {
	const clamp = 4
	if t > clamp {
		t = clamp
	} else if t < -clamp {
		t = -clamp
	}
	ts := p.tgt[platform]
	y := t*ts.Std + ts.Mean
	if p.cfg.LogTarget {
		return math.Exp(y)
	}
	return y
}

// fitTargets computes per-platform target statistics over a training set,
// keeping existing entries (so fine-tuning on an unseen platform adds its
// stats without disturbing the others).
func (p *Predictor) fitTargets(samples []Sample) {
	sums := make(map[string]*[3]float64) // n, sum, sumsq
	for _, s := range samples {
		if _, exists := p.tgt[s.Platform]; exists {
			continue
		}
		y := s.LatencyMS
		if p.cfg.LogTarget {
			y = math.Log(math.Max(y, 1e-9))
		}
		acc, ok := sums[s.Platform]
		if !ok {
			acc = &[3]float64{}
			sums[s.Platform] = acc
		}
		acc[0]++
		acc[1] += y
		acc[2] += y * y
	}
	for plat, acc := range sums {
		mean := acc[1] / acc[0]
		variance := acc[2]/acc[0] - mean*mean
		std := math.Sqrt(math.Max(variance, 0))
		if std < 1e-6 {
			std = 1
		}
		p.tgt[plat] = targetStats{Mean: mean, Std: std}
	}
}

// normalizeSamples clones and standardizes sample features with the
// predictor's normalizer.
func (p *Predictor) normalizeSamples(samples []Sample) []Sample {
	out := make([]Sample, len(samples))
	for i, s := range samples {
		gf := s.GF.Clone()
		p.norm.Apply(gf)
		out[i] = Sample{GF: gf, LatencyMS: s.LatencyMS, Platform: s.Platform}
	}
	return out
}

// Fit trains the predictor from scratch on samples, fitting the feature
// normalizer and per-platform target statistics first. Works for both
// single-platform and multi-platform datasets (Algorithm 1 covers both).
func (p *Predictor) Fit(samples []Sample) error {
	if len(samples) == 0 {
		return fmt.Errorf("core: empty training set")
	}
	gfs := make([]*feats.GraphFeatures, len(samples))
	for i, s := range samples {
		gfs[i] = s.GF
	}
	// Bump on entry (weights are about to change under concurrent readers)
	// and again on exit (readers that memoized mid-training must not match
	// the final weights either).
	p.bumpGeneration()
	defer p.bumpGeneration()
	p.norm = feats.FitNormalizer(gfs)
	p.fitTargets(samples)
	for _, s := range samples {
		p.head(s.Platform) // materialize heads up front
	}
	return p.train(p.normalizeSamples(samples), p.cfg.Epochs)
}

// FineTune continues training on new samples without refitting the feature
// normalizer (the paper's transfer protocol: pre-trained α and β are loaded
// and fine-tuned on the new sample set). Target statistics are added for
// platforms not yet seen. Optimizer state is reset, as a fresh fine-tuning
// run would do.
func (p *Predictor) FineTune(samples []Sample, epochs int) error {
	if p.norm == nil {
		return fmt.Errorf("core: FineTune requires a fitted predictor")
	}
	p.bumpGeneration()
	defer p.bumpGeneration()
	p.fitTargets(samples)
	for _, s := range samples {
		p.head(s.Platform)
	}
	p.opt.Reset()
	return p.train(p.normalizeSamples(samples), epochs)
}

// gradSample computes one sample's loss gradient into gb (the train.Hooks
// Grad contract): forward through the shared backbone and the sample's
// platform head, backward through both with scratch-backed intermediates.
// Returns the sample's squared error in normalized target space.
func (p *Predictor) gradSample(samples []Sample, si int, inv float64, gb *tensor.GradBuf, rng *rand.Rand, sc *tensor.Scratch) float64 {
	s := samples[si]
	c := p.embed(s.GF, sc)
	pred, hc := p.heads[s.Platform].ForwardScratch(c.headIn, true, rng, sc)
	target := p.encodeTarget(s.LatencyMS, s.Platform)
	diff := pred.At(0, 0) - target
	loss := diff * diff
	if p.cfg.RelativeLoss && !p.cfg.LogTarget {
		// ((ŷ-y)/y)² in raw space: scale the normalized-space
		// gradient by (σ/y)².
		w := p.tgt[s.Platform].Std / math.Max(s.LatencyMS, 1e-9)
		diff *= w * w
	}
	dPred := sc.Get(1, 1)
	dPred.Set(0, 0, 2*diff*inv)
	dIn := p.heads[s.Platform].BackwardSink(hc, dPred, gb, sc)
	p.backwardEmbed(c, dIn, gb, sc)
	sc.Reset()
	return loss
}

// train runs mini-batch SGD per Algorithm 1 through the shared train.Trainer:
// each sample's loss updates the shared encoder and its platform's head;
// batches average gradients, computed across Config.Workers goroutines with
// bit-identical results for any worker count. With EarlyStop, 10% of the
// samples are held out for per-epoch validation and the best-epoch weights
// are restored at the end.
func (p *Predictor) train(samples []Sample, epochs int) error {
	var val []Sample
	if p.cfg.EarlyStop && len(samples) >= 50 {
		// Deterministic split: every 10th sample (post-normalization order
		// is caller-stable) validates.
		var tr []Sample
		for i, s := range samples {
			if i%10 == 9 {
				val = append(val, s)
			} else {
				tr = append(tr, s)
			}
		}
		samples = tr
	}
	tcfg := train.Config{
		Epochs: epochs, BatchSize: p.cfg.BatchSize,
		Workers: p.cfg.Workers, Schedule: train.StepDecay,
	}
	workers := tcfg.WorkerCount()
	scratch := make([]*tensor.Scratch, workers)
	for i := range scratch {
		scratch[i] = tensor.NewScratch()
	}
	// The backbone participates in every step; head params join per batch.
	// Both slices are hoisted out of the per-batch path and reused.
	encParams := []*tensor.Param{}
	if p.enc != nil {
		encParams = p.enc.Params()
	}
	stepBuf := make([]*tensor.Param, 0, len(p.allParams()))
	plats := make([]string, 0, len(p.heads))

	tr := &train.Trainer{
		Cfg: tcfg,
		Opt: p.opt,
		Hooks: train.Hooks{
			Grad: func(worker, si int, inv float64, gb *tensor.GradBuf, rng *rand.Rand) float64 {
				return p.gradSample(samples, si, inv, gb, rng, scratch[worker])
			},
			BatchParams: func(batch []int) []*tensor.Param {
				// Backbone plus every head touched by this batch. Batches are
				// small (≈16), so a linear scan beats a map allocation.
				stepBuf = append(stepBuf[:0], encParams...)
				plats = plats[:0]
				for _, si := range batch {
					plat := samples[si].Platform
					seen := false
					for _, q := range plats {
						if q == plat {
							seen = true
							break
						}
					}
					if !seen {
						plats = append(plats, plat)
						stepBuf = append(stepBuf, p.heads[plat].Params()...)
					}
				}
				return stepBuf
			},
			Epoch: p.epochHook,
		},
	}
	if len(val) > 0 {
		tr.Hooks.ValLoss = func() float64 { return p.valLoss(val, workers, scratch) }
		tr.Hooks.Snapshot = p.snapshotParams
		tr.Hooks.Restore = p.restoreParams
	}
	return tr.Run(len(samples), p.rng)
}

// valLoss computes the mean squared error on already-normalized samples,
// fanning the forward passes across workers (squared errors are summed in
// index order, so the result does not depend on the worker count).
func (p *Predictor) valLoss(val []Sample, workers int, scratch []*tensor.Scratch) float64 {
	errs := make([]float64, len(val))
	train.ParallelFor(workers, len(val), func(w, i int) {
		s := val[i]
		sc := scratch[w]
		c := p.embed(s.GF, sc)
		pred, _ := p.heads[s.Platform].ForwardScratch(c.headIn, false, nil, sc)
		d := pred.At(0, 0) - p.encodeTarget(s.LatencyMS, s.Platform)
		errs[i] = d * d
		sc.Reset()
	})
	var sum float64
	for _, e := range errs {
		sum += e
	}
	return sum / float64(len(val))
}

// snapshotParams copies every parameter value into a flat buffer (reusing
// buf when it fits).
func (p *Predictor) snapshotParams(buf []float64) []float64 {
	params := p.allParams()
	var total int
	for _, pr := range params {
		total += len(pr.Value.Data)
	}
	if cap(buf) < total {
		buf = make([]float64, total)
	}
	buf = buf[:total]
	off := 0
	for _, pr := range params {
		copy(buf[off:], pr.Value.Data)
		off += len(pr.Value.Data)
	}
	return buf
}

// restoreParams writes a snapshot back into the parameters.
func (p *Predictor) restoreParams(buf []float64) {
	off := 0
	for _, pr := range p.allParams() {
		copy(pr.Value.Data, buf[off:off+len(pr.Value.Data)])
		off += len(pr.Value.Data)
	}
}

// backwardEmbed routes the head-input gradient back through pooling and the
// encoder, with gradients routed to gb (nil → Param.Grad) and intermediates
// drawn from sc (nil allocates); the static-feature slice of the gradient
// ends at the inputs.
func (p *Predictor) backwardEmbed(c *embedCaches, dIn *tensor.Matrix, gb *tensor.GradBuf, sc *tensor.Scratch) {
	if c.pooled == nil {
		return // static-only model: nothing upstream to update
	}
	poolDim := c.pooled.Cols
	dPool := sc.Get(1, poolDim)
	copy(dPool.Row(0), dIn.Row(0)[:poolDim])
	if p.cfg.MeanPool && c.gf.X.Rows > 0 {
		dPool.Scale(1 / float64(c.gf.X.Rows))
	}
	if p.cfg.UseGNN && p.enc != nil {
		dH := gnn.SumPoolBackwardScratch(dPool, c.gf.X.Rows, sc)
		p.enc.BackwardSink(c.encC, dH, gb, sc)
	}
}

// embedFused computes the head input from already-normalized features on
// the inference-only path: the fused CSR forward with per-generation
// stacked weights, no backward caches, no goroutine fan-out — every matrix
// comes from sc, so with a warm Scratch the call is allocation-free. The
// head input is bit-identical to embed's (same kernels, same per-element
// accumulation order; fusion only halves kernel invocations). csr may be
// nil when the configuration does not run the GNN.
func (p *Predictor) embedFused(x *tensor.Matrix, csr *gnn.CSR, static []float64, sc *tensor.Scratch) *tensor.Matrix {
	var pooled *tensor.Matrix
	switch {
	case !p.cfg.UseNodeFeats:
		// static only
	case p.cfg.UseGNN:
		wp := p.weightPlanCurrent()
		h := p.enc.ForwardInferCSR(x, csr, wp.stacked, sc)
		pooled = gnn.SumPoolScratch(h, sc)
		if p.cfg.MeanPool && h.Rows > 0 {
			pooled.Scale(1 / float64(h.Rows))
		}
	default:
		pooled = gnn.SumPoolScratch(x, sc)
		if p.cfg.MeanPool && x.Rows > 0 {
			pooled.Scale(1 / float64(x.Rows))
		}
	}
	dim := 0
	if pooled != nil {
		dim = pooled.Cols
	}
	withStatic := p.cfg.UseStatic || dim == 0
	if withStatic {
		dim += len(static)
	}
	headIn := sc.Get(1, dim)
	row := headIn.Row(0)
	if pooled != nil {
		copy(row, pooled.Row(0))
		row = row[pooled.Cols:]
	}
	if withStatic {
		copy(row, static)
	}
	return headIn
}

// PredictSample predicts latency (ms) for a prepared sample's features.
// Steady state is allocation-free: the feature clone, normalization,
// adjacency flattening and every forward intermediate run on a pooled
// per-goroutine workspace, and the forward pass itself builds no backward
// caches. gf is only read.
func (p *Predictor) PredictSample(gf *feats.GraphFeatures, platform string) (float64, error) {
	if p.norm == nil {
		return 0, fmt.Errorf("core: predictor not fitted")
	}
	h, ok := p.heads[platform]
	if !ok {
		return 0, fmt.Errorf("core: no head for platform %q", platform)
	}
	st := p.infPool.Get().(*predictState)
	st.gf.CopyFrom(gf)
	p.norm.Apply(st.gf)
	var csr *gnn.CSR
	if p.cfg.UseNodeFeats && p.cfg.UseGNN {
		st.csr.Reset()
		st.csr.AppendGraph(st.gf.Adj, 0)
		csr = &st.csr
	}
	headIn := p.embedFused(st.gf.X, csr, st.gf.Static, st.sc)
	pred := h.ForwardInfer(headIn, st.sc)
	out := p.decodeTarget(pred.At(0, 0), platform)
	st.sc.Reset()
	p.infPool.Put(st)
	return out, nil
}

// Predict extracts features (memoized on the graph) and predicts latency
// (ms). Repeat predictions for the same *onnx.Graph skip extraction
// entirely (see feats.ExtractCached for the mutation caveat), and known
// graph hashes hit the compiled plan cache, skipping normalization and
// adjacency flattening too.
func (p *Predictor) Predict(g *onnx.Graph, platform string) (float64, error) {
	gf, err := feats.ExtractCached(g, p.cfg.elemSize())
	if err != nil {
		return 0, err
	}
	if key, kerr := graphhash.GraphKey(g); kerr == nil {
		return p.predictPlanned(uint64(key), gf, platform)
	}
	return p.PredictSample(gf, platform)
}

// PredictAllSample predicts latency on every platform head from one shared
// embedding computation — the single-model multi-head inference mode whose
// cost advantage §8.5 reports (one backbone forward serves all heads). This
// is the batched/parallel counterpart of PredictSample: the backbone forward
// uses the goroutine-parallel matmul kernels and the per-platform heads fan
// out across Config.Workers, trading allocations for wall-clock latency.
func (p *Predictor) PredictAllSample(gf *feats.GraphFeatures) (map[string]float64, error) {
	if p.norm == nil {
		return nil, fmt.Errorf("core: predictor not fitted")
	}
	c := gf.Clone()
	p.norm.Apply(c)
	ec := p.embed(c, nil)
	plats := p.Platforms()
	preds := make([]float64, len(plats))
	train.ParallelFor(p.cfg.Workers, len(plats), func(_, i int) {
		pred, _ := p.heads[plats[i]].Forward(ec.headIn, false, nil)
		preds[i] = p.decodeTarget(pred.At(0, 0), plats[i])
	})
	out := make(map[string]float64, len(plats))
	for i, plat := range plats {
		out[plat] = preds[i]
	}
	return out, nil
}

// PredictAll extracts features once (memoized on the graph) and predicts
// latency on every platform.
func (p *Predictor) PredictAll(g *onnx.Graph) (map[string]float64, error) {
	gf, err := feats.ExtractCached(g, p.cfg.elemSize())
	if err != nil {
		return nil, err
	}
	return p.PredictAllSample(gf)
}
