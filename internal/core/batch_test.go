package core

import (
	"math/rand"
	"testing"

	"nnlqp/internal/feats"
	"nnlqp/internal/hwsim"
	"nnlqp/internal/models"
	"nnlqp/internal/onnx"
)

// buildGraphs generates n deterministic variants cycling through families.
func buildGraphs(t testing.TB, families []string, n int, seed int64) []*onnx.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]*onnx.Graph, 0, n)
	for i := 0; i < n; i++ {
		g, err := models.Variant(families[i%len(families)], rng, 1)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, g)
	}
	return out
}

// TestPredictBatchBitIdenticalToPredict is the property test for the packed
// batch path: for every batch width, PredictBatch must reproduce N
// independent Predict calls bit for bit. The packing is block-diagonal, every
// kernel downstream is row-independent, and the blocked matmul's tiling
// depends only on the column counts — so batching may never change an
// answer, only the throughput.
func TestPredictBatchBitIdenticalToPredict(t *testing.T) {
	fams := []string{models.FamilySqueezeNet, models.FamilyResNet}
	train := buildSamples(t, fams, 12, hwsim.DatasetPlatform, 30)
	cfg := quickConfig()
	cfg.Epochs = 3
	p := New(cfg)
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}

	graphs := buildGraphs(t, fams, 32, 31)
	want := make([]float64, len(graphs))
	for i, g := range graphs {
		v, err := p.Predict(g, hwsim.DatasetPlatform)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}

	for _, width := range []int{1, 2, 7, 32} {
		got, err := p.PredictBatch(graphs[:width], hwsim.DatasetPlatform)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != width {
			t.Fatalf("width %d: got %d results", width, len(got))
		}
		for i, v := range got {
			if v != want[i] {
				t.Fatalf("width %d graph %d: batched %v != solo %v (must be bit-identical)", width, i, v, want[i])
			}
		}
	}

	// A second pass over the warmed pool must still be bit-identical (the
	// capacity pool re-slices buffers across differing batch shapes).
	got, err := p.PredictBatch(graphs[:7], hwsim.DatasetPlatform)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != want[i] {
			t.Fatalf("warm pass graph %d: %v != %v", i, v, want[i])
		}
	}
}

// TestPredictBatchAblationConfigs runs the bit-identity property under every
// ablation switch, covering each branch of the packed forward (static-only,
// no-GNN pooling, sum vs mean pooling, final-norm on).
func TestPredictBatchAblationConfigs(t *testing.T) {
	fams := []string{models.FamilySqueezeNet}
	train := buildSamples(t, fams, 8, hwsim.DatasetPlatform, 32)
	graphs := buildGraphs(t, fams, 7, 33)

	cases := map[string]func(*Config){
		"full":        func(c *Config) {},
		"woNodeFeats": func(c *Config) { c.UseNodeFeats = false },
		"woGNN":       func(c *Config) { c.UseGNN = false },
		"woStatic":    func(c *Config) { c.UseStatic = false },
		"sumPoolNorm": func(c *Config) { c.MeanPool = false; c.NoFinalNorm = false },
	}
	for name, mod := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := quickConfig()
			cfg.Epochs = 2
			mod(&cfg)
			p := New(cfg)
			if err := p.Fit(train); err != nil {
				t.Fatal(err)
			}
			got, err := p.PredictBatch(graphs, hwsim.DatasetPlatform)
			if err != nil {
				t.Fatal(err)
			}
			for i, g := range graphs {
				want, err := p.Predict(g, hwsim.DatasetPlatform)
				if err != nil {
					t.Fatal(err)
				}
				if got[i] != want {
					t.Fatalf("graph %d: batched %v != solo %v", i, got[i], want)
				}
			}
		})
	}
}

// TestPredictSamplesIntoMatchesPredictSample covers the pre-extracted
// feature entry point used by the server batcher, including dst reuse.
func TestPredictSamplesIntoMatchesPredictSample(t *testing.T) {
	train := buildSamples(t, []string{models.FamilySqueezeNet}, 10, hwsim.DatasetPlatform, 34)
	cfg := quickConfig()
	cfg.Epochs = 2
	p := New(cfg)
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	gfs := make([]*feats.GraphFeatures, 0, 5)
	for _, s := range train[:5] {
		gfs = append(gfs, s.GF)
	}
	dst := []float64{-1} // pre-existing content must be preserved (append semantics)
	dst, err := p.PredictSamplesInto(dst, gfs, hwsim.DatasetPlatform)
	if err != nil {
		t.Fatal(err)
	}
	if len(dst) != 1+len(gfs) || dst[0] != -1 {
		t.Fatalf("append semantics broken: len %d, dst[0]=%v", len(dst), dst[0])
	}
	for i, gf := range gfs {
		want, err := p.PredictSample(gf, hwsim.DatasetPlatform)
		if err != nil {
			t.Fatal(err)
		}
		if dst[1+i] != want {
			t.Fatalf("sample %d: batched %v != solo %v", i, dst[1+i], want)
		}
	}
	// Empty batch: dst returned unchanged, no error.
	out, err := p.PredictSamplesInto(dst, nil, hwsim.DatasetPlatform)
	if err != nil || len(out) != len(dst) {
		t.Fatalf("empty batch: out len %d err %v", len(out), err)
	}
}

// TestPredictBatchErrors pins the validation paths.
func TestPredictBatchErrors(t *testing.T) {
	graphs := buildGraphs(t, []string{models.FamilySqueezeNet}, 2, 35)
	cfg := quickConfig()
	cfg.Epochs = 1
	if _, err := New(cfg).PredictBatch(graphs, hwsim.DatasetPlatform); err == nil {
		t.Fatal("want unfitted error")
	}
	train := buildSamples(t, []string{models.FamilySqueezeNet}, 6, hwsim.DatasetPlatform, 36)
	p := New(cfg)
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	if _, err := p.PredictBatch(graphs, "gpu-P4-trt7.1-int8"); err == nil {
		t.Fatal("want no-head error for untrained platform")
	}
	out, err := p.PredictBatch(nil, hwsim.DatasetPlatform)
	if err != nil || out != nil {
		t.Fatalf("empty batch: out %v err %v", out, err)
	}
}

// TestPredictBatchSteadyStateAllocs pins the allocation-free batched hot
// path: with warmed pools and a reused dst, PredictBatchInto must not
// allocate — the acceptance criterion for the packed serving path.
func TestPredictBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool intentionally bypasses its cache under -race, so alloc counts are meaningless")
	}
	train := buildSamples(t, []string{models.FamilySqueezeNet}, 10, hwsim.DatasetPlatform, 37)
	cfg := quickConfig()
	cfg.Epochs = 2
	p := New(cfg)
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	graphs := buildGraphs(t, []string{models.FamilySqueezeNet}, 8, 38)
	dst := make([]float64, 0, len(graphs))
	// Warm: feature-extraction memos, packing buffers, every scratch shape.
	for i := 0; i < 3; i++ {
		var err error
		dst, err = p.PredictBatchInto(dst[:0], graphs, hwsim.DatasetPlatform)
		if err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		var err error
		dst, err = p.PredictBatchInto(dst[:0], graphs, hwsim.DatasetPlatform)
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("PredictBatchInto allocates %.1f objects/op in steady state, want 0", avg)
	}
}

// BenchmarkPredictBatch measures packed-batch throughput at increasing batch
// widths (run with -benchmem). The graphs/s metric is the headline: it must
// increase with width as the blocked matmul amortizes each weight panel over
// more rows. Width 1 is the batching overhead floor versus
// BenchmarkPredictSteadyState.
func BenchmarkPredictBatch(b *testing.B) {
	train := buildSamples(b, []string{models.FamilyAlexNet}, 10, hwsim.DatasetPlatform, 39)
	cfg := quickConfig()
	cfg.Epochs = 2
	p := New(cfg)
	if err := p.Fit(train); err != nil {
		b.Fatal(err)
	}
	graphs := buildGraphs(b, []string{models.FamilyAlexNet}, 32, 40)
	for _, width := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(benchName(width), func(b *testing.B) {
			gs := graphs[:width]
			dst := make([]float64, 0, width)
			var err error
			for i := 0; i < 3; i++ {
				if dst, err = p.PredictBatchInto(dst[:0], gs, hwsim.DatasetPlatform); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if dst, err = p.PredictBatchInto(dst[:0], gs, hwsim.DatasetPlatform); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(width)*float64(b.N)/secs, "graphs/s")
			}
		})
	}
}

// benchName formats a width sub-benchmark name with stable lexical ordering.
func benchName(width int) string {
	if width < 10 {
		return "width=0" + string(rune('0'+width))
	}
	return "width=" + string(rune('0'+width/10)) + string(rune('0'+width%10))
}
