package core

import (
	"sync"
	"testing"

	"nnlqp/internal/hwsim"
	"nnlqp/internal/models"
)

func TestPredictMemoGetPutLRU(t *testing.T) {
	m := NewPredictMemo(memoShards) // capacity 1 per shard
	if _, ok := m.Get(1, "p", 1); ok {
		t.Fatal("empty memo must miss")
	}
	m.Put(1, "p", 1, 3.5)
	if v, ok := m.Get(1, "p", 1); !ok || v != 3.5 {
		t.Fatalf("Get = (%v, %v), want (3.5, true)", v, ok)
	}
	// Same hash and generation, different platform: a distinct entry that
	// lands on the same shard and evicts the first (per-shard capacity 1).
	m.Put(1, "q", 1, 7)
	if _, ok := m.Get(1, "p", 1); ok {
		t.Fatal("older entry must be the LRU victim")
	}
	if v, ok := m.Get(1, "q", 1); !ok || v != 7 {
		t.Fatalf("Get = (%v, %v), want (7, true)", v, ok)
	}
	st := m.Stats()
	if st.Evictions != 1 || st.Size != 1 {
		t.Fatalf("stats = %+v, want 1 eviction / size 1", st)
	}
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 hits / 2 misses", st)
	}
}

func TestPredictMemoGenerationIsolation(t *testing.T) {
	m := NewPredictMemo(0)
	m.Put(42, "plat", 1, 9.25)
	if _, ok := m.Get(42, "plat", 2); ok {
		t.Fatal("an entry from generation 1 must be invisible under generation 2")
	}
	if v, ok := m.Get(42, "plat", 1); !ok || v != 9.25 {
		t.Fatalf("Get = (%v, %v), want the generation-1 entry intact", v, ok)
	}
}

func TestPredictMemoConcurrent(t *testing.T) {
	m := NewPredictMemo(64)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				h := uint64(i % 100)
				switch (i + w) % 3 {
				case 0:
					m.Put(h, "p", uint64(w%2), float64(i))
				case 1:
					m.Get(h, "p", uint64(w%2))
				case 2:
					m.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	if n := m.Len(); n > 64 {
		t.Fatalf("size %d exceeds capacity", n)
	}
}

// TestGenerationChangesOnWeightUpdates pins the invalidation contract: any
// path that can change predictions (Fit, FineTune, constructing or loading a
// predictor) must change Generation(), so memo entries keyed by the old
// generation become unreachable without an explicit flush.
func TestGenerationChangesOnWeightUpdates(t *testing.T) {
	train := buildSamples(t, []string{models.FamilySqueezeNet}, 8, hwsim.DatasetPlatform, 41)
	cfg := quickConfig()
	cfg.Epochs = 2

	p := New(cfg)
	q := New(cfg)
	if p.Generation() == q.Generation() {
		t.Fatal("two predictors must never share a generation")
	}

	g0 := p.Generation()
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	g1 := p.Generation()
	if g1 == g0 {
		t.Fatal("Fit must bump the generation")
	}
	if err := p.FineTune(train[:4], 1); err != nil {
		t.Fatal(err)
	}
	g2 := p.Generation()
	if g2 == g1 {
		t.Fatal("FineTune must bump the generation")
	}

	// The serving pattern: a memo entry recorded under the pre-fine-tune
	// generation is unreachable afterwards — lookups under the live
	// generation miss and the caller re-predicts.
	m := NewPredictMemo(0)
	gf := train[0].GF
	gen := p.Generation()
	v, err := p.PredictSample(gf, hwsim.DatasetPlatform)
	if err != nil {
		t.Fatal(err)
	}
	m.Put(1, hwsim.DatasetPlatform, gen, v)
	if err := p.FineTune(train[4:], 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(1, hwsim.DatasetPlatform, p.Generation()); ok {
		t.Fatal("memo entry must be stale after FineTune changed the generation")
	}
}

// TestPredictSteadyStateAllocs pins the allocation-free hot path: once the
// sync.Pool-backed scratch state is warm, PredictSample must not allocate.
func TestPredictSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool intentionally bypasses its cache under -race, so alloc counts are meaningless")
	}
	train := buildSamples(t, []string{models.FamilySqueezeNet}, 10, hwsim.DatasetPlatform, 42)
	cfg := quickConfig()
	cfg.Epochs = 2
	p := New(cfg)
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	gf := train[0].GF
	// Warm the pool so every shape bucket exists.
	for i := 0; i < 3; i++ {
		if _, err := p.PredictSample(gf, hwsim.DatasetPlatform); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := p.PredictSample(gf, hwsim.DatasetPlatform); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("PredictSample allocates %.1f objects/op in steady state, want 0", avg)
	}
}

// BenchmarkPredictSteadyState measures the warmed single-prediction hot path
// (run with -benchmem; the allocs/op column is pinned to 0 by
// TestPredictSteadyStateAllocs).
func BenchmarkPredictSteadyState(b *testing.B) {
	train := buildSamples(b, []string{models.FamilySqueezeNet}, 10, hwsim.DatasetPlatform, 43)
	cfg := quickConfig()
	cfg.Epochs = 2
	p := New(cfg)
	if err := p.Fit(train); err != nil {
		b.Fatal(err)
	}
	gf := train[0].GF
	for i := 0; i < 3; i++ {
		if _, err := p.PredictSample(gf, hwsim.DatasetPlatform); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PredictSample(gf, hwsim.DatasetPlatform); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictMemoGet(b *testing.B) {
	m := NewPredictMemo(0)
	for i := 0; i < 256; i++ {
		m.Put(uint64(i), "p", 1, float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.Get(uint64(i%256), "p", 1); !ok {
			b.Fatal("miss")
		}
	}
}
