package core

import (
	"fmt"
	"sync"

	"nnlqp/internal/feats"
	"nnlqp/internal/gnn"
	"nnlqp/internal/tensor"
)

// This file holds the compiled prediction plans of the serving hot path.
// Two caches, both keyed so that invalidation is implicit (the same
// generation discipline as PredictMemo):
//
//   - weightPlan: the encoder's stacked [W1;W2] matrices for the fused
//     inference forward, rebuilt once per predictor generation instead of
//     once per call. One atomic pointer, double-checked rebuild.
//   - graphPlan: per-graph-hash compiled request state — the normalized
//     node-feature matrix, the flattened CSR adjacency and the normalized
//     static vector. Repeat predictions of a known graph on a new platform
//     or generation (where the downstream prediction memo misses) skip
//     feature cloning, normalization and adjacency reshaping entirely.
//
// A generation mismatch can only orphan an entry, never corrupt a result:
// Fit/FineTune bump the generation before touching weights, so anything a
// racing reader builds lands under the old generation, which no future
// reader asks for.

// weightPlan is one generation's stacked encoder weights.
type weightPlan struct {
	gen     uint64
	stacked []*tensor.Matrix // one 2In×Out [W1;W2] per encoder layer
}

// weightPlanCurrent returns the stacked weights for the current generation,
// rebuilding them at most once per generation. Callers must only use it
// when the predictor has an encoder.
func (p *Predictor) weightPlanCurrent() *weightPlan {
	gen := p.gen.Load()
	if wp := p.wplan.Load(); wp != nil && wp.gen == gen {
		return wp
	}
	p.wplanMu.Lock()
	defer p.wplanMu.Unlock()
	if wp := p.wplan.Load(); wp != nil && wp.gen == gen {
		return wp
	}
	wp := &weightPlan{gen: gen, stacked: p.enc.StackedWeightsAll()}
	p.wplan.Store(wp)
	return wp
}

// graphPlan is one graph's compiled request state under one generation.
// All fields are read-only after build, so concurrent predictions share a
// plan freely.
type graphPlan struct {
	gen    uint64
	hash   uint64
	x      *tensor.Matrix // normalized node features
	csr    gnn.CSR        // flattened adjacency
	static []float64      // normalized static features
	nodes  int
}

// defaultPlanEntries bounds the plan cache. Plans carry a full normalized
// feature matrix (tens of KB for typical graphs), so the cap sits well
// below the prediction memo's.
const defaultPlanEntries = 512

const planShards = 16

type planEntry struct {
	plan       *graphPlan
	prev, next *planEntry // intrusive LRU list (head = most recent)
}

type planShard struct {
	mu         sync.Mutex
	entries    map[uint64]*planEntry
	head, tail *planEntry
}

// planCache is a sharded LRU of graphPlans keyed by graph hash. An entry
// whose generation no longer matches reads as a miss and is replaced in
// place by the next put for its hash.
type planCache struct {
	shards []planShard
	mask   uint64
	cap    int // per-shard capacity
}

func newPlanCache(entries int) *planCache {
	perShard := (entries + planShards - 1) / planShards
	c := &planCache{shards: make([]planShard, planShards), mask: planShards - 1, cap: perShard}
	for i := range c.shards {
		c.shards[i].entries = make(map[uint64]*planEntry)
	}
	return c
}

func (c *planCache) shard(hash uint64) *planShard {
	return &c.shards[(hash^hash>>32)&c.mask]
}

// get returns the plan for (hash, gen), or nil on miss/stale.
func (c *planCache) get(hash, gen uint64) *graphPlan {
	s := c.shard(hash)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[hash]
	if !ok || e.plan.gen != gen {
		return nil
	}
	s.moveToFront(e)
	return e.plan
}

// put stores (replacing any same-hash entry, stale or not) and evicts LRU
// overflow.
func (c *planCache) put(pl *graphPlan) {
	s := c.shard(pl.hash)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[pl.hash]; ok {
		e.plan = pl
		s.moveToFront(e)
		return
	}
	e := &planEntry{plan: pl}
	s.entries[pl.hash] = e
	s.pushFront(e)
	if len(s.entries) > c.cap {
		victim := s.tail
		s.unlink(victim)
		delete(s.entries, victim.plan.hash)
	}
}

func (s *planShard) pushFront(e *planEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *planShard) unlink(e *planEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *planShard) moveToFront(e *planEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// buildPlan compiles one graph's request state: clone + normalize features
// once, flatten the adjacency once. The build allocates; every subsequent
// prediction through the plan does not.
func (p *Predictor) buildPlan(hash, gen uint64, gf *feats.GraphFeatures) *graphPlan {
	pl := &graphPlan{gen: gen, hash: hash, nodes: gf.X.Rows}
	pl.x = gf.X.Clone()
	p.norm.ApplyX(pl.x)
	pl.static = append([]float64(nil), gf.Static...)
	p.norm.ApplyStatic(pl.static)
	pl.csr.Reset()
	pl.csr.AppendGraph(gf.Adj, 0)
	return pl
}

// predictPlanned is PredictSample through the plan cache: normalization and
// adjacency flattening come precompiled, so the request's cost is one fused
// forward pass. Bit-identical to PredictSample (Apply ≡ ApplyX+ApplyStatic
// and the forward is the same fused kernel chain).
func (p *Predictor) predictPlanned(hash uint64, gf *feats.GraphFeatures, platform string) (float64, error) {
	if p.norm == nil {
		return 0, fmt.Errorf("core: predictor not fitted")
	}
	h, ok := p.heads[platform]
	if !ok {
		return 0, fmt.Errorf("core: no head for platform %q", platform)
	}
	gen := p.gen.Load()
	pl := p.plans.get(hash, gen)
	if pl == nil {
		pl = p.buildPlan(hash, gen, gf)
		p.plans.put(pl)
	}
	st := p.infPool.Get().(*predictState)
	headIn := p.embedFused(pl.x, &pl.csr, pl.static, st.sc)
	pred := h.ForwardInfer(headIn, st.sc)
	out := p.decodeTarget(pred.At(0, 0), platform)
	st.sc.Reset()
	p.infPool.Put(st)
	return out, nil
}
