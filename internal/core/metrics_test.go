package core

import (
	"math"
	"testing"
)

func TestPearson(t *testing.T) {
	truth := []float64{1, 2, 3, 4, 5}
	if r := Pearson(truth, []float64{2, 4, 6, 8, 10}); math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect positive correlation = %v", r)
	}
	if r := Pearson(truth, []float64{10, 8, 6, 4, 2}); math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect negative correlation = %v", r)
	}
	// Zero variance on either side is undefined, not ±1.
	if r := Pearson(truth, []float64{3, 3, 3, 3, 3}); !math.IsNaN(r) {
		t.Fatalf("constant predictions gave %v, want NaN", r)
	}
	if r := Pearson(nil, nil); !math.IsNaN(r) {
		t.Fatalf("empty input gave %v, want NaN", r)
	}
	if r := Pearson(truth, []float64{1, 2}); !math.IsNaN(r) {
		t.Fatalf("length mismatch gave %v, want NaN", r)
	}
}

func TestCalibration(t *testing.T) {
	truth := []float64{1, 2, 3, 4}
	if c := Calibration(truth, []float64{2, 4, 6, 8}); math.Abs(c-2) > 1e-12 {
		t.Fatalf("2x over-prediction = %v, want 2", c)
	}
	if c := Calibration(truth, truth); math.Abs(c-1) > 1e-12 {
		t.Fatalf("perfect calibration = %v, want 1", c)
	}
	if c := Calibration(nil, nil); !math.IsNaN(c) {
		t.Fatalf("empty input gave %v, want NaN", c)
	}
	if c := Calibration([]float64{0, 0}, []float64{1, 1}); !math.IsNaN(c) {
		t.Fatalf("zero truth mass gave %v, want NaN", c)
	}
}
