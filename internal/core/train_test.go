package core

import (
	"math"
	"runtime"
	"testing"

	"nnlqp/internal/feats"
	"nnlqp/internal/hwsim"
	"nnlqp/internal/models"
	"nnlqp/internal/tensor"
)

// fitAt trains a fresh predictor on samples with the given worker count and
// returns its flattened weights.
func fitAt(t *testing.T, cfg Config, samples []Sample, workers int) []float64 {
	t.Helper()
	cfg.Workers = workers
	p := New(cfg)
	if err := p.Fit(samples); err != nil {
		t.Fatal(err)
	}
	return p.snapshotParams(nil)
}

// TestTrainBitIdenticalAcrossWorkers is the PR's central determinism claim:
// the same seed trains the full NNLP model to bit-identical weights whether
// batches run on 1, 4 or GOMAXPROCS workers.
func TestTrainBitIdenticalAcrossWorkers(t *testing.T) {
	cfg := quickConfig()
	cfg.Epochs = 6
	samples := buildSamples(t, []string{models.FamilySqueezeNet}, 60, hwsim.DatasetPlatform, 1)

	ref := fitAt(t, cfg, samples, 1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got := fitAt(t, cfg, samples, workers)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d params, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: weight %d differs: %v != %v", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestConcurrentBatchWorkersRace exercises the concurrent training and read
// paths; run under -race (see the Makefile check target) it proves the
// workers share no unsynchronized state.
func TestConcurrentBatchWorkersRace(t *testing.T) {
	cfg := quickConfig()
	cfg.Epochs = 3
	cfg.Workers = 4
	samples := buildSamples(t, []string{models.FamilySqueezeNet}, 24, hwsim.DatasetPlatform, 2)
	p := New(cfg)
	if err := p.Fit(samples); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Evaluate(samples); err != nil {
		t.Fatal(err)
	}
	if _, err := p.PredictAllSample(samples[0].GF); err != nil {
		t.Fatal(err)
	}
}

// fdSetup prepares a predictor with materialized heads/normalizer and the
// normalized samples, without training (weights stay at init).
func fdSetup(t *testing.T, cfg Config, samples []Sample) (*Predictor, []Sample) {
	t.Helper()
	p := New(cfg)
	gfs := make([]*feats.GraphFeatures, len(samples))
	for i, s := range samples {
		gfs[i] = s.GF
	}
	p.norm = feats.FitNormalizer(gfs)
	p.fitTargets(samples)
	for _, s := range samples {
		p.head(s.Platform)
	}
	return p, p.normalizeSamples(samples)
}

// sinkLoss evaluates the scalar objective gradSample differentiates: the
// (possibly relative-weighted) squared error in normalized target space,
// scaled by inv.
func sinkLoss(p *Predictor, s Sample, inv float64) float64 {
	c := p.embed(s.GF, nil)
	pred, _ := p.heads[s.Platform].Forward(c.headIn, true, nil) // Dropout=0: rng unused
	diff := pred.At(0, 0) - p.encodeTarget(s.LatencyMS, s.Platform)
	w := 1.0
	if p.cfg.RelativeLoss && !p.cfg.LogTarget {
		r := p.tgt[s.Platform].Std / math.Max(s.LatencyMS, 1e-9)
		w = r * r
	}
	return inv * w * diff * diff
}

// TestGradSampleFiniteDifference re-checks the gradients flowing through the
// sink path (embed → head → backwardEmbed, all scratch-backed) against
// central finite differences, for both the plain and the RelativeLoss
// objectives.
func TestGradSampleFiniteDifference(t *testing.T) {
	base := quickConfig()
	base.Hidden = 8
	base.Depth = 2
	base.HeadHidden = 8
	base.Dropout = 0 // deterministic forward for finite differences

	rel := base
	rel.LogTarget = false
	rel.RelativeLoss = true

	for name, cfg := range map[string]Config{"plain": base, "relative": rel} {
		t.Run(name, func(t *testing.T) {
			samples := buildSamples(t, []string{models.FamilySqueezeNet}, 3, hwsim.DatasetPlatform, 3)
			p, ns := fdSetup(t, cfg, samples)
			inv := 1.0 / float64(len(ns))

			// Accumulate every sample through its own sink slot, then reduce
			// — exactly what Trainer does per batch.
			sink := tensor.NewGradSink(len(ns))
			sc := tensor.NewScratch()
			for i := range ns {
				p.gradSample(ns, i, inv, sink.Slot(i), nil, sc)
			}
			params := p.allParams()
			for _, pr := range params {
				pr.ZeroGrad()
			}
			sink.Reduce()

			total := func() float64 {
				var sum float64
				for _, s := range ns {
					sum += sinkLoss(p, s, inv)
				}
				return sum
			}
			const eps = 1e-6
			checked := 0
			for _, pr := range params {
				for _, j := range []int{0, len(pr.Value.Data) / 2, len(pr.Value.Data) - 1} {
					orig := pr.Value.Data[j]
					pr.Value.Data[j] = orig + eps
					up := total()
					pr.Value.Data[j] = orig - eps
					down := total()
					pr.Value.Data[j] = orig
					fd := (up - down) / (2 * eps)
					got := pr.Grad.Data[j]
					if math.Abs(fd-got) > 1e-5*(1+math.Abs(fd)) {
						t.Fatalf("%s[%d]: sink grad %v, finite difference %v", pr.Name, j, got, fd)
					}
					checked++
				}
			}
			if checked == 0 {
				t.Fatal("no gradient entries checked")
			}
		})
	}
}
