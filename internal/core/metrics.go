package core

import (
	"fmt"
	"math"
	"sync"

	"nnlqp/internal/train"
)

// MAPE is the mean absolute percentage error (Appendix C, Eq. 6), in
// percent; lower is better.
func MAPE(truth, pred []float64) float64 {
	if len(truth) != len(pred) || len(truth) == 0 {
		return math.NaN()
	}
	var sum float64
	for i := range truth {
		if truth[i] == 0 {
			continue
		}
		sum += math.Abs(truth[i]-pred[i]) / math.Abs(truth[i])
	}
	return sum / float64(len(truth)) * 100
}

// AccDelta is the error-bound accuracy Acc(δ) (Appendix C, Eq. 7): the
// percentage of samples whose relative error is within delta (e.g. 0.10 for
// Acc(10%)); higher is better.
func AccDelta(truth, pred []float64, delta float64) float64 {
	if len(truth) != len(pred) || len(truth) == 0 {
		return math.NaN()
	}
	var hit int
	for i := range truth {
		if truth[i] == 0 {
			continue
		}
		if math.Abs(truth[i]-pred[i])/math.Abs(truth[i]) <= delta {
			hit++
		}
	}
	return float64(hit) / float64(len(truth)) * 100
}

// Pearson is the Pearson correlation coefficient between truth and pred:
// 1.0 means the predictor ranks and scales latencies linearly with reality,
// 0 means no linear relationship. NaN for mismatched/empty inputs or when
// either series is constant (zero variance).
func Pearson(truth, pred []float64) float64 {
	if len(truth) != len(pred) || len(truth) == 0 {
		return math.NaN()
	}
	n := float64(len(truth))
	var mt, mp float64
	for i := range truth {
		mt += truth[i]
		mp += pred[i]
	}
	mt /= n
	mp /= n
	var cov, vt, vp float64
	for i := range truth {
		dt, dp := truth[i]-mt, pred[i]-mp
		cov += dt * dp
		vt += dt * dt
		vp += dp * dp
	}
	if vt == 0 || vp == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vt*vp)
}

// Calibration is the mean predicted latency over the mean true latency: 1.0
// is perfectly calibrated in aggregate, above 1 the predictor systematically
// over-estimates, below 1 it under-estimates. Orthogonal to MAPE (a
// predictor can have low MAPE yet a consistent bias) and to Pearson (a
// perfectly correlated predictor can still be scaled wrong). NaN for
// mismatched/empty inputs or a zero truth mean.
func Calibration(truth, pred []float64) float64 {
	if len(truth) != len(pred) || len(truth) == 0 {
		return math.NaN()
	}
	var st, sp float64
	for i := range truth {
		st += truth[i]
		sp += pred[i]
	}
	if st == 0 {
		return math.NaN()
	}
	return sp / st
}

// SplitHoldout deterministically splits samples into a training set and a
// held-out validation set: with frac ≈ 1/k, every k-th sample (by position)
// is held out. The split depends only on sample order — which
// db.Store.TrainingSnapshot fixes to insertion order — so the online
// retrainer and `nnlqp-train -from-db` agree on the same holdout for the
// same snapshot, and repeated splits of an unchanged database are
// identical. Sets too small to validate (fewer than 5 samples, or frac <= 0)
// are returned whole with an empty holdout.
func SplitHoldout(samples []Sample, frac float64) (train, holdout []Sample) {
	if frac <= 0 || len(samples) < 5 {
		return samples, nil
	}
	k := int(math.Round(1 / frac))
	if k < 2 {
		k = 2
	}
	train = make([]Sample, 0, len(samples))
	for i, s := range samples {
		if i%k == k-1 {
			holdout = append(holdout, s)
		} else {
			train = append(train, s)
		}
	}
	if len(train) == 0 {
		return samples, nil
	}
	return train, holdout
}

// Metrics bundles the two evaluation figures the paper reports.
type Metrics struct {
	MAPE   float64
	Acc10  float64
	Count  int
	Truths []float64
	Preds  []float64
}

// String renders a compact summary.
func (m Metrics) String() string {
	return fmt.Sprintf("MAPE %.2f%%  Acc(10%%) %.2f%%  n=%d", m.MAPE, m.Acc10, m.Count)
}

// Evaluate runs the predictor over samples, fanning the independent forward
// passes across Config.Workers goroutines, and computes metrics.
func (p *Predictor) Evaluate(samples []Sample) (Metrics, error) {
	truths := make([]float64, len(samples))
	preds := make([]float64, len(samples))
	var mu sync.Mutex
	var firstErr error
	train.ParallelFor(p.cfg.Workers, len(samples), func(_, i int) {
		pred, err := p.PredictSample(samples[i].GF, samples[i].Platform)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		truths[i] = samples[i].LatencyMS
		preds[i] = pred
	})
	if firstErr != nil {
		return Metrics{}, firstErr
	}
	return Metrics{
		MAPE:   MAPE(truths, preds),
		Acc10:  AccDelta(truths, preds, 0.10),
		Count:  len(samples),
		Truths: truths,
		Preds:  preds,
	}, nil
}
