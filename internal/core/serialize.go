package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"nnlqp/internal/feats"
	"nnlqp/internal/gnn"
	"nnlqp/internal/tensor"
)

// snapshot is the gob wire form of a trained predictor: everything needed
// to reload it for inference or further fine-tuning (the paper's
// "pre-trained model" artifacts).
type snapshot struct {
	Cfg       Config
	Norm      *feats.Normalizer
	Targets   map[string]targetStats
	Encoder   [][]matrixSnap // per layer: [W1, W2]
	Heads     map[string][]matrixSnap
	HeadOrder []string
}

type matrixSnap struct {
	Rows, Cols int
	Data       []float64
}

func snapMatrix(m *tensor.Matrix) matrixSnap {
	return matrixSnap{Rows: m.Rows, Cols: m.Cols, Data: append([]float64(nil), m.Data...)}
}

func (s matrixSnap) restore(into *tensor.Matrix) error {
	if into.Rows != s.Rows || into.Cols != s.Cols {
		return fmt.Errorf("core: snapshot matrix %dx%d does not fit %dx%d", s.Rows, s.Cols, into.Rows, into.Cols)
	}
	copy(into.Data, s.Data)
	return nil
}

// headParamsSnap captures a head's six parameter matrices in order.
func headParamsSnap(h *gnn.Head) []matrixSnap {
	var out []matrixSnap
	for _, p := range h.Params() {
		out = append(out, snapMatrix(p.Value))
	}
	return out
}

// Save writes the trained predictor to w.
func (p *Predictor) Save(w io.Writer) error {
	if p.norm == nil {
		return fmt.Errorf("core: cannot save an unfitted predictor")
	}
	s := snapshot{
		Cfg:     p.cfg,
		Norm:    p.norm,
		Targets: p.tgt,
		Heads:   make(map[string][]matrixSnap),
	}
	if p.enc != nil {
		for _, l := range p.enc.Layers {
			s.Encoder = append(s.Encoder, []matrixSnap{snapMatrix(l.W1.Value), snapMatrix(l.W2.Value)})
		}
	}
	for _, name := range p.Platforms() {
		s.HeadOrder = append(s.HeadOrder, name)
		s.Heads[name] = headParamsSnap(p.heads[name])
	}
	return gob.NewEncoder(w).Encode(&s)
}

// Load reconstructs a predictor from a Save stream.
func Load(r io.Reader) (*Predictor, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	p := New(s.Cfg)
	p.norm = s.Norm
	p.tgt = s.Targets
	if p.tgt == nil {
		p.tgt = make(map[string]targetStats)
	}
	if p.enc != nil {
		if len(s.Encoder) != len(p.enc.Layers) {
			return nil, fmt.Errorf("core: snapshot has %d encoder layers, config wants %d", len(s.Encoder), len(p.enc.Layers))
		}
		for i, l := range p.enc.Layers {
			if err := s.Encoder[i][0].restore(l.W1.Value); err != nil {
				return nil, err
			}
			if err := s.Encoder[i][1].restore(l.W2.Value); err != nil {
				return nil, err
			}
		}
	}
	for _, name := range s.HeadOrder {
		h := p.head(name)
		params := h.Params()
		snaps := s.Heads[name]
		if len(snaps) != len(params) {
			return nil, fmt.Errorf("core: head %q snapshot has %d tensors, want %d", name, len(snaps), len(params))
		}
		for i, ps := range snaps {
			if err := ps.restore(params[i].Value); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

// Clone deep-copies the predictor (weights, normalizer, target stats) with
// a fresh optimizer — the starting point of every transfer-learning run.
func (p *Predictor) Clone() (*Predictor, error) {
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		return nil, err
	}
	c, err := Load(&buf)
	if err != nil {
		return nil, err
	}
	// Decorrelate any future stochastic choices (dropout, shuffles) while
	// keeping determinism under the original seed.
	c.rng = rand.New(rand.NewSource(p.cfg.Seed + 1))
	return c, nil
}
