package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"nnlqp/internal/hwsim"
	"nnlqp/internal/models"
)

// buildSamples measures `n` variants of each given family on a platform and
// returns core samples. Uses small CIFAR-scale NASBench and regular
// families alike; deterministic under seed.
func buildSamples(t testing.TB, families []string, n int, platform string, seed int64) []Sample {
	t.Helper()
	p, err := hwsim.PlatformByName(platform)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var out []Sample
	for _, fam := range families {
		for i := 0; i < n; i++ {
			g, err := models.Variant(fam, rng, 1)
			if err != nil {
				t.Fatal(err)
			}
			ms, err := p.TrueLatencyMS(g)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewSample(g, ms, platform)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, s)
		}
	}
	return out
}

// quickConfig is a small-but-capable configuration for fast tests.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Hidden = 24
	cfg.Depth = 2
	cfg.HeadHidden = 24
	cfg.Epochs = 25
	cfg.LR = 2e-3
	return cfg
}

func TestPredictorLearnsSingleFamily(t *testing.T) {
	fams := []string{models.FamilySqueezeNet}
	train := buildSamples(t, fams, 60, hwsim.DatasetPlatform, 1)
	test := buildSamples(t, fams, 20, hwsim.DatasetPlatform, 2)

	p := New(quickConfig())
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	m, err := p.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("in-family: %s", m)
	if m.MAPE > 20 {
		t.Fatalf("MAPE %.2f%% too high for in-family prediction", m.MAPE)
	}
	if m.Acc10 < 40 {
		t.Fatalf("Acc(10%%) %.2f%% too low", m.Acc10)
	}
}

func TestPredictorGeneralizesAcrossFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	trainFams := []string{models.FamilySqueezeNet, models.FamilyResNet, models.FamilyVGG}
	train := buildSamples(t, trainFams, 40, hwsim.DatasetPlatform, 3)
	// Unseen family at test time (the Table 3 protocol).
	test := buildSamples(t, []string{models.FamilyAlexNet}, 20, hwsim.DatasetPlatform, 4)

	p := New(quickConfig())
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	m, err := p.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("unseen family: %s", m)
	// Unseen-structure errors are larger, but predictions must stay in the
	// right regime.
	if m.MAPE > 60 {
		t.Fatalf("unseen-family MAPE %.2f%% way off", m.MAPE)
	}
}

func TestPredictorErrors(t *testing.T) {
	p := New(quickConfig())
	if err := p.Fit(nil); err == nil {
		t.Fatal("want empty-training-set error")
	}
	g := models.BuildSqueezeNet(models.BaseSqueezeNet(1))
	if _, err := p.Predict(g, hwsim.DatasetPlatform); err == nil {
		t.Fatal("want unfitted error")
	}
	train := buildSamples(t, []string{models.FamilySqueezeNet}, 6, hwsim.DatasetPlatform, 5)
	cfg := quickConfig()
	cfg.Epochs = 1
	p2 := New(cfg)
	if err := p2.Fit(train); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Predict(g, "gpu-P4-trt7.1-int8"); err == nil {
		t.Fatal("want no-head error for untrained platform")
	}
	if err := New(cfg).FineTune(train, 1); err == nil {
		t.Fatal("want unfitted FineTune error")
	}
}

func TestMultiPlatformSharedBackbone(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	platA, platB := "gpu-T4-trt7.1-fp32", "hi3559A-nnie11-int8"
	train := append(
		buildSamples(t, []string{models.FamilySqueezeNet}, 40, platA, 6),
		buildSamples(t, []string{models.FamilySqueezeNet}, 40, platB, 7)...,
	)
	p := New(quickConfig())
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	if got := p.Platforms(); len(got) != 2 {
		t.Fatalf("platforms = %v", got)
	}
	for _, plat := range []string{platA, platB} {
		test := buildSamples(t, []string{models.FamilySqueezeNet}, 15, plat, 8)
		m, err := p.Evaluate(test)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: %s", plat, m)
		if m.MAPE > 30 {
			t.Fatalf("%s MAPE %.2f%% too high for multi-head predictor", plat, m.MAPE)
		}
	}
}

func TestFineTuneImprovesUnseenPlatform(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	// Pretrain on one platform, fine-tune on another with few samples; the
	// fine-tuned model must beat the scratch model with the same few
	// samples (Fig. 7's claim).
	pre := buildSamples(t, []string{models.FamilySqueezeNet}, 60, "gpu-T4-trt7.1-fp32", 9)
	few := buildSamples(t, []string{models.FamilySqueezeNet}, 12, "gpu-P4-trt7.1-int8", 10)
	test := buildSamples(t, []string{models.FamilySqueezeNet}, 20, "gpu-P4-trt7.1-int8", 11)

	base := New(quickConfig())
	if err := base.Fit(pre); err != nil {
		t.Fatal(err)
	}
	tuned, err := base.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := tuned.FineTune(few, 30); err != nil {
		t.Fatal(err)
	}
	mTuned, err := tuned.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}

	scratch := New(quickConfig())
	if err := scratch.Fit(few); err != nil {
		t.Fatal(err)
	}
	mScratch, err := scratch.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("transfer: %s | scratch: %s", mTuned, mScratch)
	// At 12 fine-tuning samples both regimes are noisy; the qualitative
	// Fig. 6/7 claims are asserted at experiment scale. Here we only
	// require the transferred model to stay in the same quality regime.
	if mTuned.MAPE > mScratch.MAPE+15 && mTuned.MAPE > 25 {
		t.Fatalf("transfer (%.2f%%) collapsed versus scratch (%.2f%%)", mTuned.MAPE, mScratch.MAPE)
	}
}

func TestAblationConfigsTrainAndDegrade(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	train := buildSamples(t, []string{models.FamilySqueezeNet, models.FamilyResNet}, 30, hwsim.DatasetPlatform, 12)
	test := buildSamples(t, []string{models.FamilySqueezeNet, models.FamilyResNet}, 10, hwsim.DatasetPlatform, 13)

	run := func(mod func(*Config)) Metrics {
		cfg := quickConfig()
		mod(&cfg)
		p := New(cfg)
		if err := p.Fit(train); err != nil {
			t.Fatal(err)
		}
		m, err := p.Evaluate(test)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	full := run(func(c *Config) {})
	woNode := run(func(c *Config) { c.UseNodeFeats = false })
	woGNN := run(func(c *Config) { c.UseGNN = false })
	woStatic := run(func(c *Config) { c.UseStatic = false })
	t.Logf("full=%.2f woFv0=%.2f woGNN=%.2f woStatic=%.2f", full.MAPE, woNode.MAPE, woGNN.MAPE, woStatic.MAPE)
	// The full model should be the best of the four (Table 4's headline).
	for name, m := range map[string]Metrics{"wo/Fv0": woNode, "wo/gnn": woGNN, "wo/static": woStatic} {
		if m.MAPE+1e-9 < full.MAPE {
			t.Errorf("%s (%.2f%%) unexpectedly beats full NNLP (%.2f%%)", name, m.MAPE, full.MAPE)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	train := buildSamples(t, []string{models.FamilySqueezeNet}, 15, hwsim.DatasetPlatform, 14)
	cfg := quickConfig()
	cfg.Epochs = 4
	p := New(cfg)
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g := models.BuildSqueezeNet(models.BaseSqueezeNet(1))
	a, err := p.Predict(g, hwsim.DatasetPlatform)
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.Predict(g, hwsim.DatasetPlatform)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("loaded predictor disagrees: %f vs %f", a, b)
	}
	// Unfitted save fails.
	if err := New(cfg).Save(&bytes.Buffer{}); err == nil {
		t.Fatal("want unfitted-save error")
	}
	// Garbage load fails.
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("want decode error")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	train := buildSamples(t, []string{models.FamilySqueezeNet}, 15, hwsim.DatasetPlatform, 15)
	cfg := quickConfig()
	cfg.Epochs = 3
	p := New(cfg)
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	c, err := p.Clone()
	if err != nil {
		t.Fatal(err)
	}
	g := models.BuildSqueezeNet(models.BaseSqueezeNet(1))
	before, _ := p.Predict(g, hwsim.DatasetPlatform)
	// Fine-tune the clone only.
	if err := c.FineTune(train[:5], 5); err != nil {
		t.Fatal(err)
	}
	after, _ := p.Predict(g, hwsim.DatasetPlatform)
	if before != after {
		t.Fatal("fine-tuning the clone mutated the original")
	}
}

func TestDeterministicTraining(t *testing.T) {
	train := buildSamples(t, []string{models.FamilySqueezeNet}, 12, hwsim.DatasetPlatform, 16)
	cfg := quickConfig()
	cfg.Epochs = 3
	g := models.BuildSqueezeNet(models.BaseSqueezeNet(1))
	run := func() float64 {
		p := New(cfg)
		if err := p.Fit(train); err != nil {
			t.Fatal(err)
		}
		v, err := p.Predict(g, hwsim.DatasetPlatform)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if run() != run() {
		t.Fatal("training is not deterministic under a fixed seed")
	}
}

func TestMetricsFunctions(t *testing.T) {
	truth := []float64{10, 20, 100}
	pred := []float64{11, 18, 150}
	m := MAPE(truth, pred)
	want := (0.1 + 0.1 + 0.5) / 3 * 100
	if math.Abs(m-want) > 1e-9 {
		t.Fatalf("MAPE = %f, want %f", m, want)
	}
	acc := AccDelta(truth, pred, 0.10)
	if math.Abs(acc-2.0/3*100) > 1e-9 {
		t.Fatalf("Acc(10%%) = %f", acc)
	}
	if !math.IsNaN(MAPE(nil, nil)) || !math.IsNaN(AccDelta([]float64{1}, nil, 0.1)) {
		t.Fatal("degenerate inputs should yield NaN")
	}
}

func TestPredictAllSharesEmbedding(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	platA, platB := "gpu-T4-trt7.1-fp32", "gpu-P4-trt7.1-int8"
	train := append(
		buildSamples(t, []string{models.FamilySqueezeNet}, 25, platA, 20),
		buildSamples(t, []string{models.FamilySqueezeNet}, 25, platB, 21)...,
	)
	cfg := quickConfig()
	cfg.Epochs = 10
	p := New(cfg)
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	g := models.BuildSqueezeNet(models.BaseSqueezeNet(1))
	all, err := p.PredictAll(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("PredictAll covered %d platforms", len(all))
	}
	// Must agree exactly with per-platform Predict (same embedding path).
	for _, plat := range []string{platA, platB} {
		single, err := p.Predict(g, plat)
		if err != nil {
			t.Fatal(err)
		}
		if single != all[plat] {
			t.Fatalf("%s: PredictAll %.6f != Predict %.6f", plat, all[plat], single)
		}
	}
	// Unfitted predictor errors.
	if _, err := New(cfg).PredictAll(g); err == nil {
		t.Fatal("want unfitted error")
	}
}

func TestRelativeLossAndRawTargetTrain(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	train := buildSamples(t, []string{models.FamilySqueezeNet}, 40, hwsim.DatasetPlatform, 22)
	test := buildSamples(t, []string{models.FamilySqueezeNet}, 12, hwsim.DatasetPlatform, 23)
	cfg := quickConfig()
	cfg.LogTarget = false
	cfg.RelativeLoss = true
	cfg.MeanPool = false
	p := New(cfg)
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	m, err := p.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("raw+relative in-family: %s", m)
	if m.MAPE > 40 {
		t.Fatalf("relative-loss training failed to learn: %.2f%%", m.MAPE)
	}
}

func TestPredictionClampPreventsBlowup(t *testing.T) {
	// Train on tiny SqueezeNets, predict a gigantic VGG: the clamp bounds
	// the prediction to exp(mean + 4*std) of the training distribution.
	train := buildSamples(t, []string{models.FamilySqueezeNet}, 20, hwsim.DatasetPlatform, 24)
	cfg := quickConfig()
	cfg.Epochs = 5
	p := New(cfg)
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	big := models.BuildVGG(models.BaseVGG(8)) // batch 8 VGG: far out of distribution
	v, err := p.Predict(big, hwsim.DatasetPlatform)
	if err != nil {
		t.Fatal(err)
	}
	var maxTrain float64
	for _, s := range train {
		if s.LatencyMS > maxTrain {
			maxTrain = s.LatencyMS
		}
	}
	if v > maxTrain*1000 {
		t.Fatalf("clamp failed: predicted %.1f ms with train max %.3f ms", v, maxTrain)
	}
	if v <= 0 {
		t.Fatal("prediction must stay positive")
	}
}
