package core

import (
	"fmt"

	"nnlqp/internal/feats"
	"nnlqp/internal/gnn"
	"nnlqp/internal/onnx"
	"nnlqp/internal/tensor"
)

// This file implements micro-batched prediction: B graphs packed into one
// forward pass. The packing is block-diagonal — node-feature rows of all
// graphs concatenate into one (Σ nodes)×FeatureDim matrix, each graph's
// adjacency is offset into its row range (so no edge ever crosses a graph
// boundary), SumPool reduces per-graph row segments, and the per-platform
// head evaluates all B embeddings in one B×dim pass. Every kernel in that
// chain is row-independent (matmul rows, mean aggregation, L2 row norms,
// ReLU, bias add), so each graph's prediction is bit-identical to its solo
// Predict — batching changes throughput, never answers. The property test
// in batch_test.go pins this at widths 1/2/7/32.
//
// The win over B solo calls is amortization: the blocked matmul streams
// each weight panel once per (Σ nodes) rows instead of once per graph's
// nodes, and per-call overhead (scratch bookkeeping, head dispatch) is paid
// once per batch.

// batchState is one goroutine's pooled batched-inference workspace. All
// packing buffers grow to the largest batch seen and are reused, so steady
// state allocates nothing.
type batchState struct {
	sc      *tensor.Scratch
	x       *tensor.Matrix         // packed (Σ nodes)×FeatureDim node features
	csr     gnn.CSR                // packed block-diagonal adjacency, flattened
	segs    []int                  // per-graph row offsets, len B+1
	statics []float64              // packed B×StaticDim static features
	gfs     []*feats.GraphFeatures // extracted features per graph (borrowed)
}

// batchPool hands out batchStates; lazily initialized because gob-loaded
// predictors construct through New just like fresh ones.
func (p *Predictor) batchState() *batchState {
	st, _ := p.batchPool.Get().(*batchState)
	if st == nil {
		st = &batchState{sc: tensor.NewScratch(), x: &tensor.Matrix{}}
	}
	return st
}

// PredictBatch predicts latency (ms) for every graph on one platform in a
// single packed forward pass. Results are positionally aligned with gs and
// bit-identical to calling Predict per graph. Feature extraction is
// memoized per graph exactly as in Predict.
func (p *Predictor) PredictBatch(gs []*onnx.Graph, platform string) ([]float64, error) {
	return p.PredictBatchInto(nil, gs, platform)
}

// PredictBatchInto is PredictBatch appending into dst (grown as needed and
// returned). With a reused dst of sufficient capacity the steady-state call
// is allocation-free: packing buffers, scratch matrices and the head pass
// all run on pooled memory.
func (p *Predictor) PredictBatchInto(dst []float64, gs []*onnx.Graph, platform string) ([]float64, error) {
	if p.norm == nil {
		return nil, fmt.Errorf("core: predictor not fitted")
	}
	if _, ok := p.heads[platform]; !ok {
		return nil, fmt.Errorf("core: no head for platform %q", platform)
	}
	if len(gs) == 0 {
		return dst, nil
	}
	st := p.batchState()
	st.gfs = st.gfs[:0]
	for _, g := range gs {
		gf, err := feats.ExtractCached(g, p.cfg.elemSize())
		if err != nil {
			p.batchPool.Put(st)
			return nil, err
		}
		st.gfs = append(st.gfs, gf)
	}
	dst = p.predictPacked(dst, st, platform)
	p.batchPool.Put(st)
	return dst, nil
}

// Extract runs (memoized) feature extraction for g under this predictor's
// configuration, for callers that validate graphs individually before
// batching the resulting feature sets through PredictSamplesInto.
func (p *Predictor) Extract(g *onnx.Graph) (*feats.GraphFeatures, error) {
	return feats.ExtractCached(g, p.cfg.elemSize())
}

// PredictSamplesInto predicts latency for pre-extracted feature sets (read
// only) on one platform through the packed batch path, appending into dst.
func (p *Predictor) PredictSamplesInto(dst []float64, gfs []*feats.GraphFeatures, platform string) ([]float64, error) {
	if p.norm == nil {
		return nil, fmt.Errorf("core: predictor not fitted")
	}
	if _, ok := p.heads[platform]; !ok {
		return nil, fmt.Errorf("core: no head for platform %q", platform)
	}
	if len(gfs) == 0 {
		return dst, nil
	}
	st := p.batchState()
	st.gfs = append(st.gfs[:0], gfs...)
	dst = p.predictPacked(dst, st, platform)
	p.batchPool.Put(st)
	return dst, nil
}

// predictPacked runs the packed forward over st.gfs and appends one
// prediction per graph to dst. st.gfs entries are only read; the packed
// copies are what normalization mutates.
func (p *Predictor) predictPacked(dst []float64, st *batchState, platform string) []float64 {
	b := len(st.gfs)
	total := 0
	for _, gf := range st.gfs {
		total += gf.X.Rows
	}

	// Pack node features and the block-diagonal adjacency into reusable
	// buffers, then normalize the packed copies — row-wise, so bit-identical
	// to normalizing each graph's clone on the solo path.
	x := st.x
	if cap(x.Data) < total*feats.FeatureDim {
		x.Data = make([]float64, total*feats.FeatureDim)
	}
	x.Rows, x.Cols = total, feats.FeatureDim
	x.Data = x.Data[:total*feats.FeatureDim]
	st.csr.Reset()
	st.segs = append(st.segs[:0], 0)
	if cap(st.statics) < b*feats.StaticDim {
		st.statics = make([]float64, b*feats.StaticDim)
	}
	st.statics = st.statics[:b*feats.StaticDim]
	off := 0
	for gi, gf := range st.gfs {
		copy(x.Data[off*feats.FeatureDim:], gf.X.Data)
		st.csr.AppendGraph(gf.Adj, off)
		static := st.statics[gi*feats.StaticDim : (gi+1)*feats.StaticDim]
		copy(static, gf.Static)
		p.norm.ApplyStatic(static)
		off += gf.X.Rows
		st.segs = append(st.segs, off)
	}
	p.norm.ApplyX(x)

	// One forward pass over the packed batch, mirroring embedInfer's
	// ablation switch.
	sc := st.sc
	var pooled *tensor.Matrix
	switch {
	case !p.cfg.UseNodeFeats:
		// static only
	case p.cfg.UseGNN:
		wp := p.weightPlanCurrent()
		h := p.enc.ForwardInferCSR(x, &st.csr, wp.stacked, sc)
		pooled = gnn.SumPoolSegmentsScratch(h, st.segs, sc)
	default:
		pooled = gnn.SumPoolSegmentsScratch(x, st.segs, sc)
	}
	if pooled != nil && p.cfg.MeanPool {
		for gi := 0; gi < b; gi++ {
			if n := st.segs[gi+1] - st.segs[gi]; n > 0 {
				row := pooled.Row(gi)
				inv := 1 / float64(n)
				for j := range row {
					row[j] *= inv
				}
			}
		}
	}

	dim := 0
	if pooled != nil {
		dim = pooled.Cols
	}
	withStatic := p.cfg.UseStatic || dim == 0
	if withStatic {
		dim += feats.StaticDim
	}
	headIn := sc.GetAtLeast(b, dim)
	for gi := 0; gi < b; gi++ {
		row := headIn.Row(gi)
		if pooled != nil {
			copy(row, pooled.Row(gi))
			row = row[pooled.Cols:]
		}
		if withStatic {
			copy(row, st.statics[gi*feats.StaticDim:(gi+1)*feats.StaticDim])
		}
	}
	pred := p.heads[platform].ForwardInfer(headIn, sc)
	for gi := 0; gi < b; gi++ {
		dst = append(dst, p.decodeTarget(pred.At(gi, 0), platform))
	}
	sc.Reset()
	return dst
}
