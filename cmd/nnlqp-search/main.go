// Command nnlqp-search runs hardware-aware neural architecture search over
// the OFA-style supernet space, screening candidates with the NNLP latency
// predictor (fast) or the device farm (slow but exact) — the workflow the
// paper's §8.7/§9 motivates.
//
// Usage:
//
//	nnlqp-search -platform gpu-T4-trt7.1-int8 -budget-ms 1.5
//	nnlqp-search -platform gpu-T4-trt7.1-int8 -budget-ms 1.5 -oracle measure
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"nnlqp/internal/core"
	"nnlqp/internal/hwsim"
	"nnlqp/internal/models"
	"nnlqp/internal/nas"
	"nnlqp/internal/onnx"
)

func main() {
	platform := flag.String("platform", "gpu-T4-trt7.1-int8", "target platform")
	budget := flag.Float64("budget-ms", 1.5, "latency budget (ms)")
	oracle := flag.String("oracle", "predict", "latency oracle: predict or measure")
	trainN := flag.Int("train", 150, "measured samples to train the predictor (oracle=predict)")
	pop := flag.Int("population", 64, "population size")
	gens := flag.Int("generations", 8, "generations")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	p, err := hwsim.PlatformByName(*platform)
	if err != nil {
		log.Fatal(err)
	}

	var latency nas.LatencyOracle
	switch *oracle {
	case "measure":
		latency = func(g *onnx.Graph) (float64, error) { return p.TrueLatencyMS(g) }
	case "predict":
		fmt.Printf("training predictor on %d measured OFA sub-networks...\n", *trainN)
		pred, err := trainPredictor(p, *trainN, *seed)
		if err != nil {
			log.Fatal(err)
		}
		latency = func(g *onnx.Graph) (float64, error) { return pred.Predict(g, p.Name) }
	default:
		log.Fatalf("unknown oracle %q", *oracle)
	}

	cfg := nas.DefaultSearchConfig(*budget)
	cfg.Population = *pop
	cfg.Generations = *gens
	cfg.Seed = *seed

	start := time.Now()
	res, err := nas.EvolutionarySearch(cfg, latency, models.SyntheticAccuracy)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	truth, err := p.TrueLatencyMS(res.BestGraph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest architecture after %d evaluations (%s):\n", res.Evaluated, elapsed.Round(time.Millisecond))
	fmt.Printf("  resolution %d, depths %v, kernels %v, expands %v\n",
		res.BestSpec.Resolution, res.BestSpec.Depths, res.BestSpec.Kernels, res.BestSpec.Expands)
	fmt.Printf("  accuracy %.2f%%   oracle latency %.3f ms   true latency %.3f ms (budget %.3f)\n",
		res.BestAccuracy, res.BestLatencyMS, truth, *budget)
	fmt.Printf("  per-generation best accuracy: %v\n", fmtHistory(res.History))
}

func trainPredictor(p *hwsim.Platform, n int, seed int64) (*core.Predictor, error) {
	cfg := core.DefaultConfig()
	cfg.Hidden, cfg.Depth, cfg.HeadHidden, cfg.Epochs, cfg.LR, cfg.Seed = 32, 2, 32, 25, 2e-3, seed
	pred := core.New(cfg)
	var train []core.Sample
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		g := models.BuildOFA(models.RandomOFASpec(r, 1))
		g.Name = fmt.Sprintf("search-train-%04d", i)
		ms, err := p.TrueLatencyMS(g)
		if err != nil {
			return nil, err
		}
		s, err := core.NewSample(g, ms, p.Name)
		if err != nil {
			return nil, err
		}
		train = append(train, s)
	}
	return pred, pred.Fit(train)
}

func fmtHistory(h []float64) string {
	out := "["
	for i, v := range h {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.2f", v)
	}
	return out + "]"
}
