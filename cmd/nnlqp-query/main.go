// Command nnlqp-query is the CLI face of the unified invoking interface
// (§7): query or predict the latency of a model on a platform.
//
// Usage:
//
//	nnlqp-query -model model.nnlqp -platform gpu-T4-trt7.1-fp32
//	nnlqp-query -family ResNet -seed 3 -platform cpu-openppl-fp32 -batch 8
//	nnlqp-query -family MobileNetV2 -platform gpu-T4-trt7.1-int8 \
//	    -predict -predictor pred.gob
//	nnlqp-query -platforms            # list the fleet
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nnlqp"

	"nnlqp/internal/hwsim"
)

func main() {
	modelPath := flag.String("model", "", "serialized model file (.nnlqp binary or .json)")
	family := flag.String("family", "", "build a zoo model instead of loading one")
	seed := flag.Int64("seed", 0, "variant seed for -family (0 = canonical architecture)")
	batch := flag.Int("batch", 1, "batch size")
	platform := flag.String("platform", "", "target platform")
	dbDir := flag.String("db", "", "database directory (empty = in-memory)")
	predict := flag.Bool("predict", false, "predict with NNLP instead of measuring")
	predictorPath := flag.String("predictor", "", "trained predictor file (for -predict)")
	listPlatforms := flag.Bool("platforms", false, "list platforms and exit")
	profile := flag.Bool("profile", false, "print a per-kernel latency breakdown")
	showStats := flag.Bool("stats", false, "print system statistics after the operation")
	flag.Parse()

	if *listPlatforms {
		fmt.Print(hwsim.FleetSummary())
		return
	}

	var model *nnlqp.Model
	var err error
	switch {
	case *modelPath != "":
		model, err = nnlqp.LoadModel(*modelPath)
	case *family != "":
		if *seed == 0 {
			model, err = nnlqp.Canonical(*family, *batch)
		} else {
			model, err = nnlqp.NewVariant(*family, *seed, *batch)
		}
	default:
		fmt.Fprintln(os.Stderr, "need -model or -family")
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *platform == "" {
		fmt.Fprintln(os.Stderr, "need -platform (see -platforms)")
		os.Exit(2)
	}

	client, err := nnlqp.New(nnlqp.Options{DBDir: *dbDir, PredictorPath: *predictorPath})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	if *showStats {
		defer func() {
			st := client.Stats()
			fmt.Printf("stats: %d queries = %d hits + %d misses + %d coalesced + %d failures (hit ratio %.2f)\n",
				st.Queries, st.CacheHits, st.CacheMisses, st.Coalesced, st.Failures, st.HitRatio)
			if st.StoreFailures > 0 {
				fmt.Printf("  store failures: %d (answers served but not persisted)\n", st.StoreFailures)
			}
			if st.PredictorGeneration != 0 {
				fmt.Printf("  predictor generation: %d\n", st.PredictorGeneration)
			}
		}()
	}

	st, err := model.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %s\n  hash %s | %d ops | %.2f GFLOPs | %.2f MParams | %.1f MiB MAC\n",
		model, model.Hash(), st.Operators, st.GFLOPs, st.MParams, st.MACMB)

	params := nnlqp.Params{Model: model, BatchSize: *batch, PlatformName: *platform}
	if *profile {
		out, err := client.Profile(model, *platform)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
		return
	}
	if *predict {
		v, err := client.Predict(params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("predicted latency on %s: %.3f ms\n", *platform, v)
		return
	}
	res, err := client.QueryDetailed(params)
	if err != nil {
		log.Fatal(err)
	}
	src := "measured on device farm"
	switch res.Tier {
	case "l1":
		src = "in-memory cache hit (l1)"
	case "l2":
		src = "database cache hit (l2)"
	}
	fmt.Printf("true latency on %s: %.3f ms (%s; pipeline cost %.1fs)\n",
		*platform, res.LatencyMS, src, res.PipelineSeconds)
}
