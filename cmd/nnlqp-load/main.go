// Command nnlqp-load is the production load harness CLI: it generates (or
// replays) a deterministic multi-client workload trace and drives it
// open-loop against an nnlqp-server or cluster router, reporting per-SLO-class
// latency percentiles, goodput, an error taxonomy and cross-client fairness
// as JSON.
//
// The workload comes either from a spec file (-spec, see internal/workload)
// or from the flags below, which build an N-client spec cycling the listed
// SLO classes. Everything is seeded: the same seed and spec produce the same
// trace byte for byte, so a run can be recorded (-record) and replayed
// (-replay) exactly.
//
// Usage:
//
//	nnlqp-load -target http://127.0.0.1:8080 -duration 10 -clients 3 -rate 20
//	nnlqp-load -target http://127.0.0.1:8080 -spec workload.json -out report.json
//	nnlqp-load -seed 7 -record trace.json -dry-run        # materialize only
//	nnlqp-load -target http://127.0.0.1:8080 -replay trace.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nnlqp/internal/slo"
	"nnlqp/internal/workload"
)

func main() {
	target := flag.String("target", "", "base URL of the server or router to drive (required unless -dry-run)")
	specPath := flag.String("spec", "", "workload spec JSON file (overrides the flag-built spec)")
	seed := flag.Int64("seed", 1, "workload RNG seed")
	duration := flag.Float64("duration", 10, "trace duration in seconds")
	clients := flag.Int("clients", 3, "number of synthetic clients")
	rate := flag.Float64("rate", 20, "per-client mean arrival rate, requests/second")
	dist := flag.String("dist", "poisson", "inter-arrival distribution: poisson, gamma or weibull")
	shape := flag.Float64("shape", 2, "gamma/weibull shape parameter")
	classes := flag.String("classes", "interactive,batch,best-effort", "comma-separated SLO classes cycled across clients")
	mix := flag.String("mix", "query=1,predict=1", "op mix weights, e.g. query=2,predict=1,checkpoint=0.05")
	nModels := flag.Int("models", 4, "distinct model variants per client")
	platform := flag.String("platform", workload.DefaultPlatform, "target platform for query/predict ops")
	record := flag.String("record", "", "write the materialized trace to this file")
	replay := flag.String("replay", "", "drive a previously recorded trace instead of generating one")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	deadlines := flag.Bool("deadlines", false, "apply each request's SLO-class deadline as its HTTP timeout")
	dryRun := flag.Bool("dry-run", false, "materialize (and optionally -record) the trace without driving it")
	flag.Parse()

	var tr *workload.Trace
	var err error
	switch {
	case *replay != "":
		tr, err = workload.LoadTrace(*replay)
		if err != nil {
			log.Fatalf("load trace: %v", err)
		}
		log.Printf("replaying %s: %d records over %.1fs", *replay, len(tr.Records), tr.Spec.DurationSec)
	default:
		var spec *workload.Spec
		if *specPath != "" {
			spec, err = workload.LoadSpec(*specPath)
			if err != nil {
				log.Fatalf("load spec: %v", err)
			}
		} else {
			spec, err = flagSpec(*seed, *duration, *clients, *rate, *dist, *shape, *classes, *mix, *nModels, *platform)
			if err != nil {
				log.Fatal(err)
			}
		}
		tr, err = workload.Generate(*spec)
		if err != nil {
			log.Fatalf("generate trace: %v", err)
		}
		log.Printf("generated %d records over %.1fs (%d clients, seed %d)",
			len(tr.Records), spec.DurationSec, len(spec.Clients), spec.Seed)
	}

	if *record != "" {
		if err := tr.Save(*record); err != nil {
			log.Fatalf("record trace: %v", err)
		}
		log.Printf("trace recorded to %s", *record)
	}
	if *dryRun {
		return
	}
	if *target == "" {
		log.Fatal("-target required (or pass -dry-run to only materialize the trace)")
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	start := time.Now()
	results, err := workload.Run(ctx, tr, workload.NewHTTPTarget(*target), workload.RunOptions{
		PerRequestDeadline: *deadlines,
	})
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	rep := workload.BuildReport(results, time.Since(start))

	if *out != "" {
		if err := rep.Save(*out); err != nil {
			log.Fatalf("write report: %v", err)
		}
		log.Printf("report written to %s (goodput %.1f rps, jain %.3f)", *out, rep.GoodputRPS, rep.JainFairness)
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(rep); err != nil {
		log.Fatalf("encode report: %v", err)
	}
}

// flagSpec builds an N-client spec from the flat flags: every client shares
// the arrival process and mix, and the SLO classes cycle across clients.
func flagSpec(seed int64, duration float64, clients int, rate float64, dist string, shape float64, classes, mixStr string, nModels int, platform string) (*workload.Spec, error) {
	if clients <= 0 {
		return nil, fmt.Errorf("-clients must be > 0")
	}
	var classList []slo.Class
	for _, s := range strings.Split(classes, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		c, err := slo.Parse(s)
		if err != nil {
			return nil, err
		}
		classList = append(classList, c)
	}
	if len(classList) == 0 {
		return nil, fmt.Errorf("-classes lists no valid SLO class")
	}
	opMix, err := parseMix(mixStr)
	if err != nil {
		return nil, err
	}
	spec := &workload.Spec{Seed: seed, DurationSec: duration}
	for i := 0; i < clients; i++ {
		class := classList[i%len(classList)]
		spec.Clients = append(spec.Clients, workload.ClientSpec{
			Name:     fmt.Sprintf("%s-%d", class, i),
			Class:    class,
			Arrival:  workload.ArrivalSpec{Dist: workload.Distribution(dist), Rate: rate, Shape: shape},
			Mix:      opMix,
			Models:   nModels,
			Platform: platform,
		})
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// parseMix parses "query=2,predict=1,checkpoint=0.05".
func parseMix(s string) (workload.OpMix, error) {
	var m workload.OpMix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("bad -mix entry %q (want op=weight)", part)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad -mix weight in %q", part)
		}
		switch workload.Op(strings.TrimSpace(kv[0])) {
		case workload.OpQuery:
			m.Query = w
		case workload.OpPredict:
			m.Predict = w
		case workload.OpCheckpoint:
			m.Checkpoint = w
		default:
			return m, fmt.Errorf("bad -mix op in %q (want query, predict or checkpoint)", part)
		}
	}
	return m, nil
}
