// Command nnlqp-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	nnlqp-experiments -run table3              # one experiment, quick scale
//	nnlqp-experiments -run all -scale paper    # everything at paper scale
//	nnlqp-experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nnlqp/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment id (fig2, table2, ..., or 'all')")
	scale := flag.String("scale", "quick", "quick or paper")
	perFamily := flag.Int("per-family", 0, "override variants per family")
	epochs := flag.Int("epochs", 0, "override training epochs")
	hidden := flag.Int("hidden", 0, "override GNN hidden width")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	var opts experiments.Options
	switch *scale {
	case "quick":
		opts = experiments.Quick()
	case "paper":
		opts = experiments.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *perFamily > 0 {
		opts.PerFamily = *perFamily
		opts.TrainPerFamily = *perFamily * 3 / 4
		opts.TestPerFamily = *perFamily - opts.TrainPerFamily
	}
	if *epochs > 0 {
		opts.Epochs = *epochs
	}
	if *hidden > 0 {
		opts.Hidden = *hidden
	}
	opts.Seed = *seed
	opts.Out = os.Stdout

	start := time.Now()
	var err error
	if *run == "all" {
		err = experiments.RunAll(opts)
	} else {
		err = experiments.Run(*run, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("\ndone in %s\n", time.Since(start).Round(time.Millisecond))
}
