// Command nnlqp-server is the composition root for NNLQP's serving processes.
// By default it wires all node roles into one process — storage (database +
// L1 cache), measurement (device farm + resilience ladder) and the serving
// core (HTTP handlers + predictor engine) — exactly the single-server layout
// every earlier revision shipped. With -route it instead runs none of those
// roles and becomes a cluster front-end router fanning requests across
// replica servers under a pluggable policy.
//
// Usage:
//
//	nnlqp-server -addr :8080 -db ./nnlqp-data -predictor pred.gob
//	nnlqp-server -addr :8080 -farm 127.0.0.1:9090   # remote device farm
//	nnlqp-server -addr :8080 -route 127.0.0.1:8081,127.0.0.1:8082,127.0.0.1:8083 -route-policy affinity
//
// On SIGINT/SIGTERM the process stops accepting connections and drains
// in-flight requests for up to -shutdown-grace before exiting.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nnlqp/internal/cluster"
	"nnlqp/internal/core"
	"nnlqp/internal/db"
	"nnlqp/internal/hwsim"
	"nnlqp/internal/query"
	"nnlqp/internal/serve"
	"nnlqp/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	dbDir := flag.String("db", "", "database directory (empty = in-memory)")
	predictorPath := flag.String("predictor", "", "trained predictor file (optional)")
	farmAddr := flag.String("farm", "", "remote device farm address (empty = in-process farm)")
	devices := flag.Int("devices", 2, "devices per platform for the in-process farm")
	reqTimeout := flag.Duration("request-timeout", server.DefaultRequestTimeout, "per-request deadline for /query and /predict (0 = none)")
	shutdownGrace := flag.Duration("shutdown-grace", server.DefaultShutdownGrace, "in-flight request drain deadline on shutdown")
	syncMode := flag.String("sync", "always", "WAL durability: always (fsync per commit batch) or never (page cache only)")
	ckptWALBytes := flag.Int64("checkpoint-wal-bytes", 0, "auto-checkpoint when the WAL exceeds this size (0 = 4 MiB default, <0 disables)")
	ckptRecords := flag.Int64("checkpoint-records", 0, "auto-checkpoint after this many WAL records (0 = 50000 default, <0 disables)")
	maxAttempts := flag.Int("max-attempts", 3, "measurement attempts per query incl. the first (1 disables retries)")
	attemptTimeout := flag.Duration("attempt-timeout", 10*time.Second, "per-attempt measurement deadline (<0 disables)")
	hedgeDelay := flag.Duration("hedge-delay", 0, "floor before hedged re-dispatch to a second device (0 = percentile-armed only)")
	hedgePct := flag.Float64("hedge-percentile", 0.95, "attempt-latency percentile that arms the hedge (<0 disables hedging)")
	retryBudget := flag.Float64("retry-budget", 16, "retry/hedge token bucket capacity")
	noResilience := flag.Bool("no-resilience", false, "disable the retry/hedge layer entirely")
	noDegrade := flag.Bool("no-degrade", false, "never answer /query from the predictor when the farm is unavailable")
	predictBatchWindow := flag.Duration("predict-batch-window", 0, "gather window for /predict micro-batching (0 = off); concurrent requests within the window share one forward pass")
	predictBatchMax := flag.Int("predict-batch-max", 16, "max requests per gathered /predict batch (flushes the window early)")
	cacheEntries := flag.Int("cache-entries", 0, "L1 serving-cache capacity in records (0 = default, <0 minimal)")
	cacheNegTTL := flag.Duration("cache-negative-ttl", 0, "lifetime of negative (known-absent) L1 entries (0 = default)")
	retrain := flag.Bool("retrain", false, "retrain the predictor in the background as the database evolves, hot-swapping on holdout improvement")
	retrainInterval := flag.Duration("retrain-interval", 0, "how often the retrainer checks its triggers (0 = default 30s)")
	retrainMinNew := flag.Int("retrain-min-new", 0, "new measurements on a platform that trigger a retrain (0 = default 50)")
	retrainMinSamples := flag.Int("retrain-min-samples", 0, "minimum database records before the first (bootstrap) train (0 = default 24)")
	retrainEpochs := flag.Int("retrain-epochs", 0, "training epochs per retrain run (0 = default 10)")
	retrainHoldout := flag.Float64("retrain-holdout", 0, "fraction of the snapshot held out for swap validation (0 = default 0.2)")
	retrainDriftFactor := flag.Float64("retrain-drift-factor", 0, "rolling MAPE above holdout MAPE × this factor triggers a drift retrain (0 = default 1.5)")
	activeMeasure := flag.Bool("active-measure", false, "spend idle farm capacity measuring graphs where the predictor is most uncertain")
	activeInterval := flag.Duration("active-measure-interval", 0, "scheduler tick interval (0 = default 15s)")
	activePerTick := flag.Int("active-measure-per-tick", 0, "measurements scheduled per tick (0 = default 2)")
	activeCandidates := flag.Int("active-measure-candidates", 0, "candidate graphs scored per scheduled measurement (0 = default 8)")
	admitRate := flag.Float64("admit-rate", 0, "admission-control token rate in requests/second for /query and /predict (0 = admission off)")
	admitBurst := flag.Float64("admit-burst", 0, "admission token-bucket burst capacity (0 = rate/10, min 1)")
	admitQueue := flag.Int("admit-queue", 0, "over-rate requests allowed to wait for a token in SLO-urgency order (0 = shed immediately)")
	route := flag.String("route", "", "comma-separated replica addresses; non-empty runs this process as a cluster router instead of a server")
	routePolicy := flag.String("route-policy", "round-robin", "routing policy: round-robin, least-loaded or affinity")
	routeAttempts := flag.Int("route-attempts", 0, "replicas one request may try before giving up (0 = default 3)")
	routeRetryBudget := flag.Float64("route-retry-budget", 0, "router retry token bucket capacity (0 = default 16)")
	routeProbe := flag.Duration("route-probe-interval", 0, "replica health-probe cadence (0 = default 2s)")
	pprofAddr := flag.String("pprof-addr", "", "listen address for net/http/pprof (empty = disabled); keep it loopback-only")
	flag.Parse()

	if *pprofAddr != "" {
		// pprof gets its own mux and listener so the profiling surface is
		// never exposed on the serving address.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	// Router role: no storage, no farm, no predictor — just membership and
	// policy over the replicas' public HTTP API.
	if *route != "" {
		policy, err := cluster.PolicyByName(*routePolicy)
		if err != nil {
			log.Fatal(err)
		}
		rt := cluster.New(cluster.Config{
			Policy:        policy,
			MaxAttempts:   *routeAttempts,
			RetryBudget:   *routeRetryBudget,
			ProbeInterval: *routeProbe,
		})
		for i, a := range strings.Split(*route, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				continue
			}
			rt.AddReplica(fmt.Sprintf("replica-%d", i), a)
		}
		if len(rt.Members().Members()) == 0 {
			log.Fatal("-route needs at least one replica address")
		}
		bound, stop, err := rt.Serve(*addr)
		if err != nil {
			log.Fatalf("listen: %v", err)
		}
		fmt.Printf("nnlqp-router (%s) listening on http://%s, %d replicas\n",
			policy.Name(), bound, len(rt.Members().Members()))
		waitForSignal(stop, *shutdownGrace)
		return
	}

	// Storage role: durable store + L1 serving cache.
	dbOpts := db.Options{CheckpointWALBytes: *ckptWALBytes, CheckpointRecords: *ckptRecords}
	switch *syncMode {
	case "always":
		dbOpts.Sync = db.SyncAlways
	case "never":
		dbOpts.Sync = db.SyncNever
	default:
		log.Fatalf("bad -sync %q (want always or never)", *syncMode)
	}
	store, err := db.OpenStoreWith(*dbDir, dbOpts)
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	storage := server.NewStorageRole(store, *cacheEntries, *cacheNegTTL)
	defer storage.Close()

	// Measurement role: device farm (in-process or remote) + resilience.
	var meas *server.MeasurementRole
	if *farmAddr != "" {
		meas, err = server.NewRemoteMeasurementRole(*farmAddr)
		if err != nil {
			log.Fatalf("dial farm: %v", err)
		}
		defer meas.Close()
	} else {
		meas = server.NewLocalMeasurementRole(*devices)
	}
	if !*noResilience {
		meas.EnableResilience(query.ResilienceConfig{
			MaxAttempts:     *maxAttempts,
			AttemptTimeout:  *attemptTimeout,
			HedgeDelay:      *hedgeDelay,
			HedgePercentile: *hedgePct,
			RetryBudget:     *retryBudget,
		})
	}

	var pred *core.Predictor
	if *predictorPath != "" {
		f, err := os.Open(*predictorPath)
		if err != nil {
			log.Fatalf("open predictor: %v", err)
		}
		pred, err = core.Load(f)
		f.Close()
		if err != nil {
			log.Fatalf("load predictor: %v", err)
		}
		log.Printf("predictor loaded: platforms %v", pred.Platforms())
	}

	// Serving core composed over the two roles.
	srv := server.NewCore(storage, meas, pred)
	if *noDegrade {
		srv.System().SetFallback(nil)
	}
	srv.RequestTimeout = *reqTimeout
	srv.ShutdownGrace = *shutdownGrace
	if *predictBatchWindow > 0 {
		srv.ConfigurePredictBatching(*predictBatchWindow, *predictBatchMax)
		log.Printf("predict micro-batching: window %s, max width %d", *predictBatchWindow, *predictBatchMax)
	}
	if *admitRate > 0 {
		srv.ConfigureAdmission(server.AdmissionConfig{
			Rate: *admitRate, Burst: *admitBurst, QueueCap: *admitQueue,
		})
		log.Printf("admission control: rate %.1f rps, burst %.1f, queue %d", *admitRate, *admitBurst, *admitQueue)
	}
	if *retrain {
		cfg := serve.RetrainConfig{
			Interval:        *retrainInterval,
			MinNewRecords:   *retrainMinNew,
			MinSamples:      *retrainMinSamples,
			Epochs:          *retrainEpochs,
			HoldoutFrac:     *retrainHoldout,
			DriftMAPEFactor: *retrainDriftFactor,
		}
		srv.EnableRetraining(cfg)
		log.Printf("online retraining enabled (interval %s)", cfg.WithDefaults().Interval)
	}
	if *activeMeasure {
		cfg := serve.ActiveConfig{
			Interval:   *activeInterval,
			PerTick:    *activePerTick,
			Candidates: *activeCandidates,
		}
		srv.EnableActiveMeasurement(cfg, nil)
		log.Printf("active measurement enabled (interval %s)", cfg.WithDefaults().Interval)
	}

	bound, stop, err := srv.Serve(*addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	fmt.Printf("nnlqp-server listening on http://%s\n", bound)
	fmt.Print(hwsim.FleetSummary())
	waitForSignal(stop, *shutdownGrace)
}

func waitForSignal(stop func() error, grace time.Duration) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down (draining for up to %s)", grace)
	start := time.Now()
	if err := stop(); err != nil {
		log.Printf("shutdown: %v", err)
	}
	log.Printf("drained in %.1fs", time.Since(start).Seconds())
}
