// Command nnlqp-dataset builds a latency dataset the way the paper's §8.1
// does — N variants per model family, measured per platform through the
// query system (so everything also lands in the evolving database) — and
// exports it as JSON lines for downstream use.
//
// Usage:
//
//	nnlqp-dataset -per-family 100 -platforms gpu-gtx1660-trt7.1-fp32 \
//	    -db ./nnlqp-data -out dataset.jsonl
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"
	"time"

	"nnlqp/internal/db"
	"nnlqp/internal/graphhash"
	"nnlqp/internal/hwsim"
	"nnlqp/internal/models"
	"nnlqp/internal/query"
)

// Record is one exported dataset row.
type Record struct {
	Model     string  `json:"model"`
	Family    string  `json:"family"`
	Hash      string  `json:"hash"`
	Platform  string  `json:"platform"`
	BatchSize int     `json:"batch_size"`
	Ops       int     `json:"ops"`
	GFLOPs    float64 `json:"gflops"`
	LatencyMS float64 `json:"latency_ms"`
}

func main() {
	perFamily := flag.Int("per-family", 50, "variants per model family")
	familiesFlag := flag.String("families", "", "comma-separated families (default: all ten)")
	platformsFlag := flag.String("platforms", hwsim.DatasetPlatform, "comma-separated platforms")
	batch := flag.Int("batch", 1, "batch size")
	seed := flag.Int64("seed", 1, "random seed")
	dbDir := flag.String("db", "", "database directory (empty = in-memory)")
	out := flag.String("out", "dataset.jsonl", "output JSONL file")
	flag.Parse()

	fams := models.Families
	if *familiesFlag != "" {
		fams = strings.Split(*familiesFlag, ",")
	}
	plats := strings.Split(*platformsFlag, ",")

	store, err := db.OpenStore(*dbDir)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	sys := query.New(store, &hwsim.LocalFarm{Farm: hwsim.NewDefaultFarm(2)})

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	defer w.Flush()
	enc := json.NewEncoder(w)

	start := time.Now()
	written, skipped := 0, 0
	for _, plat := range plats {
		rng := rand.New(rand.NewSource(*seed))
		for _, fam := range fams {
			for i := 0; i < *perFamily; i++ {
				g, err := models.Variant(fam, rng, *batch)
				if err != nil {
					log.Fatal(err)
				}
				g.Name = fmt.Sprintf("%s-%05d", fam, i)
				res, err := sys.Query(context.Background(), g, plat)
				if err != nil {
					var unsupported *hwsim.UnsupportedOpError
					if errors.As(err, &unsupported) {
						skipped++
						continue
					}
					log.Fatal(err)
				}
				cost, err := g.Cost(4)
				if err != nil {
					log.Fatal(err)
				}
				rec := Record{
					Model: g.Name, Family: fam,
					Hash:     graphhash.MustGraphKey(g).String(),
					Platform: plat, BatchSize: *batch,
					Ops: g.NumNodes(), GFLOPs: float64(cost.FLOPs) / 1e9,
					LatencyMS: res.LatencyMS,
				}
				if err := enc.Encode(&rec); err != nil {
					log.Fatal(err)
				}
				written++
			}
		}
	}
	m, p, l := store.Counts()
	fmt.Printf("wrote %d records to %s in %s (%d unsupported skipped)\n",
		written, *out, time.Since(start).Round(time.Millisecond), skipped)
	fmt.Printf("database: %d models, %d platforms, %d latencies, %.1f KiB\n",
		m, p, l, float64(store.StorageBytes())/1024)
}
