// Command nnlqp-farm serves the simulated device farm over net/rpc,
// mirroring the paper's remote device management: query servers acquire
// devices, run the measurement pipeline, and release them, all through RPC.
//
// The farm can inject deterministic faults (crashed agents, wedged devices,
// slow cold starts, transient RPC errors, latency jitter, mid-flight
// connection drops) to exercise the serving path's retry/hedge/quarantine
// machinery:
//
//	nnlqp-farm -addr 127.0.0.1:9090 -devices 2
//	nnlqp-farm -fault-mode crash -fault-rate 0.2 -fault-seed 42
//	nnlqp-farm -fault-mode mixed -fault-rate 0.3 -fault-conn-drop 0.05
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nnlqp/internal/hwsim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "listen address")
	devices := flag.Int("devices", 2, "devices per platform")
	faultMode := flag.String("fault-mode", "none", "fault injection: none, crash, hang, slowstart, transient, jitter, or mixed (cycle modes across devices)")
	faultRate := flag.Float64("fault-rate", 0.1, "per-call fault probability")
	faultSeed := flag.Uint64("fault-seed", 1, "fault plan seed (same seed + schedule = same faults)")
	faultLimit := flag.Int("fault-limit", 0, "max fault firings per device (0 = unlimited)")
	faultDelay := flag.Duration("fault-delay", 200*time.Millisecond, "slow-start stall / hang cap (hang: 0 = until the caller's deadline)")
	faultRecovery := flag.Duration("fault-recovery", 2*time.Second, "how long a crashed device stays down")
	connDrop := flag.Float64("fault-conn-drop", 0, "probability of severing an RPC connection mid-flight")
	quarBase := flag.Duration("quarantine-base", hwsim.DefaultQuarantineBase, "initial quarantine window for misbehaving devices")
	quarMax := flag.Duration("quarantine-max", hwsim.DefaultQuarantineMax, "quarantine window cap")
	flag.Parse()

	farm := hwsim.NewDefaultFarm(*devices)
	farm.SetQuarantinePolicy(hwsim.HealthPolicy{Base: *quarBase, Max: *quarMax})

	if *faultMode != "none" || *connDrop > 0 {
		plan, err := buildPlan(farm, *faultMode, *faultRate, *faultLimit, *faultDelay, *faultRecovery)
		if err != nil {
			log.Fatal(err)
		}
		plan.Seed = *faultSeed
		plan.ConnDropRate = *connDrop
		farm.SetFaultPlan(plan)
		fmt.Printf("fault plan: mode=%s rate=%.2f seed=%d conn-drop=%.2f\n",
			*faultMode, *faultRate, *faultSeed, *connDrop)
	}

	srv, err := hwsim.ServeFarm(farm, *addr)
	if err != nil {
		log.Fatalf("serve farm: %v", err)
	}
	defer srv.Close()
	fmt.Printf("nnlqp-farm serving %d platforms x %d devices on %s\n",
		len(hwsim.Platforms()), *devices, srv.Addr())
	fmt.Print(hwsim.FleetSummary())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	h := farm.Health()
	log.Printf("shutting down (cumulative device wait %.1fs, %d quarantine events, %d devices benched)",
		farm.WaitSeconds(), h.Quarantines, h.QuarantinedNow)
}

// buildPlan assembles the fault plan: one shared rule for a single mode, or
// — for "mixed" — the fault modes cycled device by device so every mode is
// live somewhere in the fleet.
func buildPlan(farm *hwsim.Farm, mode string, rate float64, limit int, delay, recovery time.Duration) (*hwsim.FaultPlan, error) {
	rule := func(m hwsim.FaultMode) *hwsim.FaultRule {
		return &hwsim.FaultRule{
			Mode: m, Rate: rate, Limit: limit,
			Delay: delay, Recovery: recovery,
		}
	}
	if mode != "mixed" {
		m, err := hwsim.ParseFaultMode(mode)
		if err != nil {
			return nil, err
		}
		return &hwsim.FaultPlan{Default: rule(m)}, nil
	}
	cycle := []hwsim.FaultMode{
		hwsim.FaultCrash, hwsim.FaultHang, hwsim.FaultSlowStart,
		hwsim.FaultTransient, hwsim.FaultJitter,
	}
	plan := &hwsim.FaultPlan{Devices: make(map[string]*hwsim.FaultRule)}
	i := 0
	for _, p := range hwsim.Platforms() {
		for j := 0; ; j++ {
			id := fmt.Sprintf("%s#%d", p.Name, j)
			if j >= farm.Devices(p.Name) {
				break
			}
			plan.Devices[id] = rule(cycle[i%len(cycle)])
			i++
		}
	}
	return plan, nil
}
