// Command nnlqp-farm serves the simulated device farm over net/rpc,
// mirroring the paper's remote device management: query servers acquire
// devices, run the measurement pipeline, and release them, all through RPC.
//
// Usage:
//
//	nnlqp-farm -addr 127.0.0.1:9090 -devices 2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"nnlqp/internal/hwsim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "listen address")
	devices := flag.Int("devices", 2, "devices per platform")
	flag.Parse()

	farm := hwsim.NewDefaultFarm(*devices)
	srv, err := hwsim.ServeFarm(farm, *addr)
	if err != nil {
		log.Fatalf("serve farm: %v", err)
	}
	defer srv.Close()
	fmt.Printf("nnlqp-farm serving %d platforms x %d devices on %s\n",
		len(hwsim.Platforms()), *devices, srv.Addr())
	fmt.Print(hwsim.FleetSummary())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down (cumulative device wait %.1fs)", farm.WaitSeconds())
}
