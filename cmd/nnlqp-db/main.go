// Command nnlqp-db inspects an evolving-database directory: table
// cardinalities and storage, stored models, per-model latency records, and
// model export.
//
// Usage:
//
//	nnlqp-db -db ./nnlqp-data stats
//	nnlqp-db -db ./nnlqp-data models
//	nnlqp-db -db ./nnlqp-data latencies -hash 9a605ea185b3ee1d
//	nnlqp-db -db ./nnlqp-data export -hash 9a605ea185b3ee1d -out model.nnlqp
//	nnlqp-db -db ./nnlqp-data checkpoint
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"

	"nnlqp/internal/db"
	"nnlqp/internal/graphhash"
)

func main() {
	dbDir := flag.String("db", "", "database directory (required)")
	hash := flag.String("hash", "", "graph hash (hex) for latencies/export")
	out := flag.String("out", "model.nnlqp", "output path for export")
	limit := flag.Int("limit", 50, "max rows to print")
	flag.Parse()

	if *dbDir == "" || flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: nnlqp-db -db DIR {stats|models|platforms|latencies|export|checkpoint} [flags]")
		os.Exit(2)
	}
	store, err := db.OpenStore(*dbDir)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	switch flag.Arg(0) {
	case "stats":
		// This store is the durable L2 tier; the serving process fronts it
		// with an in-memory L1 (see nnlqp-server -cache-entries and the
		// l1_* fields of /stats).
		m, p, l := store.Counts()
		fmt.Printf("tier:      l2 (durable store; serving L1 lives in nnlqp-server)\n")
		fmt.Printf("models:    %d\nplatforms: %d\nlatencies: %d\nstorage:   %.1f KiB\n",
			m, p, l, float64(store.StorageBytes())/1024)
		es := store.EngineStats()
		fmt.Printf("wal:       %.1f KiB (%d records since last checkpoint)\n",
			float64(es.WALBytes)/1024, es.WALRecords)
		if es.SnapshotAgeSec >= 0 {
			fmt.Printf("snapshot:  %.0fs old\n", es.SnapshotAgeSec)
		} else {
			fmt.Println("snapshot:  none (never checkpointed)")
		}
		// Per-platform latency-row counts: the working-set shape an operator
		// needs when sizing the L1 tier.
		printPlatformBreakdown(store)
	case "checkpoint":
		if err := store.Checkpoint(); err != nil {
			log.Fatal(err)
		}
		es := store.EngineStats()
		fmt.Printf("checkpoint written; wal truncated to %.1f KiB (%d records)\n",
			float64(es.WALBytes)/1024, es.WALRecords)
	case "models":
		tbl, err := store.DB().Table(db.TableModel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %-18s %-28s %-14s %s\n", "ID", "HASH", "NAME", "FAMILY", "BYTES")
		n := 0
		tbl.Scan(func(row db.Row) bool {
			fmt.Printf("%-8d %016x %-28s %-14s %d\n",
				row[0].(uint64), row[1].(uint64), trunc(row[2].(string), 28), row[3].(string), len(row[4].([]byte)))
			n++
			return n < *limit
		})
	case "platforms":
		tbl, err := store.DB().Table(db.TablePlatform)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %-28s %-10s %-10s %s\n", "ID", "NAME", "HARDWARE", "SOFTWARE", "DTYPE")
		tbl.Scan(func(row db.Row) bool {
			fmt.Printf("%-6d %-28s %-10s %-10s %s\n",
				row[0].(uint64), row[1].(string), row[2].(string), row[3].(string), row[4].(string))
			return true
		})
	case "latencies":
		rec := mustModel(store, *hash)
		lats, err := store.LatenciesForModel(rec.ID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("model %s (%s): %d latency records\n", rec.Hash, rec.Name, len(lats))
		fmt.Printf("%-12s %-8s %-12s %-6s %s\n", "PLATFORM_ID", "BATCH", "LATENCY_MS", "RUNS", "PEAK_MEM")
		for _, l := range lats {
			fmt.Printf("%-12d %-8d %-12.4f %-6d %d\n", l.PlatformID, l.BatchSize, l.LatencyMS, l.Runs, l.PeakMemBytes)
		}
	case "export":
		rec := mustModel(store, *hash)
		data, err := rec.Graph.EncodeBinary()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes, %d ops)\n", *out, len(data), rec.Graph.NumNodes())
	default:
		log.Fatalf("unknown subcommand %q", flag.Arg(0))
	}
}

// printPlatformBreakdown lists latency-row counts per platform, the L1
// sizing signal: the cache only ever holds (model, platform, batch) rows, so
// the per-platform row counts bound the useful capacity.
func printPlatformBreakdown(store *db.Store) {
	names := make(map[uint64]string)
	pt, err := store.DB().Table(db.TablePlatform)
	if err != nil {
		return
	}
	pt.Scan(func(row db.Row) bool {
		names[row[0].(uint64)] = row[1].(string)
		return true
	})
	if len(names) == 0 {
		return
	}
	counts := make(map[uint64]int)
	lt, err := store.DB().Table(db.TableLatency)
	if err != nil {
		return
	}
	lt.Scan(func(row db.Row) bool {
		counts[row[2].(uint64)]++
		return true
	})
	ids := make([]uint64, 0, len(names))
	for id := range names {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Println("latency rows per platform:")
	for _, id := range ids {
		fmt.Printf("  %-28s %d\n", names[id], counts[id])
	}
}

func mustModel(store *db.Store, hexHash string) *db.ModelRecord {
	if hexHash == "" {
		log.Fatal("-hash required")
	}
	v, err := strconv.ParseUint(hexHash, 16, 64)
	if err != nil {
		log.Fatalf("bad hash %q: %v", hexHash, err)
	}
	rec, ok, err := store.FindModelByHash(graphhash.Key(v))
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatalf("no model with hash %s", hexHash)
	}
	return rec
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
