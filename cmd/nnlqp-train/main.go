// Command nnlqp-train builds a latency dataset through the query system
// (growing the evolving database), trains the multi-platform NNLP
// predictor, and saves it for nnlqp-server / nnlqp-query -predict.
//
// Usage:
//
//	nnlqp-train -out pred.gob -per-platform 200 -epochs 30
//	nnlqp-train -out pred.gob -platforms gpu-T4-trt7.1-fp32,cpu-openppl-fp32
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strings"
	"time"

	"nnlqp"
)

func main() {
	out := flag.String("out", "predictor.gob", "output predictor file")
	dbDir := flag.String("db", "", "database directory (empty = in-memory)")
	platformsFlag := flag.String("platforms", "", "comma-separated platforms (default: the 9 eval platforms)")
	perPlatform := flag.Int("per-platform", 200, "models measured per platform")
	epochs := flag.Int("epochs", 30, "training epochs")
	hidden := flag.Int("hidden", 48, "GNN hidden width")
	depth := flag.Int("depth", 3, "GNN depth")
	seed := flag.Int64("seed", 1, "random seed")
	fromDB := flag.Bool("from-db", false, "train from the latency records already in -db (via a frozen snapshot) instead of measuring a fresh corpus")
	workers := flag.Int("workers", 0, "gradient workers per batch (0 = GOMAXPROCS); results are identical for any value")
	progress := flag.Bool("progress", true, "log per-epoch training progress")
	evalN := flag.Int("eval", 40, "fresh models per platform for post-training evaluation (0 = skip)")
	flag.Parse()

	client, err := nnlqp.New(nnlqp.Options{DBDir: *dbDir})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	opts := nnlqp.TrainOptions{
		PerPlatform: *perPlatform, Epochs: *epochs, Hidden: *hidden,
		Depth: *depth, Seed: *seed, Workers: *workers,
	}
	if *platformsFlag != "" {
		opts.Platforms = strings.Split(*platformsFlag, ",")
	}
	if *progress {
		opts.Progress = func(p nnlqp.EpochProgress) {
			line := fmt.Sprintf("epoch %3d/%d  train %.4f", p.Epoch+1, p.Epochs, p.TrainLoss)
			if !math.IsNaN(p.ValLoss) {
				line += fmt.Sprintf("  val %.4f", p.ValLoss)
				if p.Best {
					line += " *"
				}
			}
			fmt.Printf("%s  lr %.2g  %s\n", line, p.LR, p.Took.Round(time.Millisecond))
		}
	}

	start := time.Now()
	if *fromDB {
		if *dbDir == "" {
			log.Fatal("-from-db requires -db")
		}
		fmt.Println("training from the evolving database (frozen snapshot)...")
		rep, err := client.TrainPredictorFromDBReport(opts)
		if err != nil {
			log.Fatal(err)
		}
		// The holdout is the same deterministic split the server's online
		// retrainer validates against, so these figures are comparable with
		// /engine's holdout metrics for the same snapshot.
		if rep.Holdout > 0 {
			fmt.Printf("holdout (%d of %d records): MAPE %.2f%%  Acc(10%%) %.2f%%\n",
				rep.Holdout, rep.Samples, rep.HoldoutMAPE, rep.HoldoutAcc10)
		} else {
			fmt.Printf("trained on all %d records (too few for a holdout split)\n", rep.Samples)
		}
	} else {
		fmt.Printf("measuring %d models per platform and training...\n", *perPlatform)
		if err := client.TrainPredictor(opts); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("trained in %s; heads: %v\n", time.Since(start).Round(time.Second), client.PredictorPlatforms())

	if *evalN > 0 {
		for _, plat := range client.PredictorPlatforms() {
			mape, acc, err := client.EvaluatePredictor(plat, *evalN, *seed+999)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-26s MAPE %6.2f%%  Acc(10%%) %6.2f%%\n", plat, mape, acc)
		}
	}
	if err := client.SavePredictor(*out); err != nil {
		log.Fatal(err)
	}
	st := client.Stats()
	fmt.Printf("saved %s; database now holds %d models / %d latency records (%.1f KiB)\n",
		*out, st.Models, st.Latencies, float64(st.StorageBytes)/1024)
}
