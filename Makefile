GO ?= go

.PHONY: build test race chaos check fmt vet bench bench-db bench-query bench-predict bench-retrain bench-cluster bench-load bench-kernels profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with real concurrency: the storage
# engine, the serving path, the data-parallel training stack and the chaos
# harness. -count=2 -shuffle=on reruns in random order so tests leaking
# state into package globals or goroutines fail here, not in CI roulette.
race:
	$(GO) test -race -count=2 -shuffle=on \
		./internal/db ./internal/query ./internal/hwsim ./internal/server \
		./internal/tensor ./internal/train ./internal/gnn ./internal/core \
		./internal/baselines ./internal/chaos ./internal/serve \
		./internal/feats ./internal/onnx ./internal/graphhash \
		./internal/cluster ./internal/slo ./internal/workload

# End-to-end fault-injection storms (internal/chaos) with a pinned seed:
# every fault mode plus the mixed fleet, under the race detector. Replay a
# different schedule with: go test -race ./internal/chaos -args -chaos.seed=N
chaos:
	$(GO) test -race -v -run TestChaos ./internal/chaos -args -chaos.seed=20260805

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

check: fmt vet build race test

bench:
	$(GO) test -bench . -benchtime 1x

# Storage-engine baselines (EXPERIMENTS.md): group-commit insert throughput
# per durability mode, the cache-hit read path, snapshot scans vs writers.
bench-db:
	$(GO) test ./internal/db -run '^$$' \
		-bench 'InsertThroughput|QueryHotPath|SnapshotScanWhileWriting' -benchtime 1s

# Serving-path baselines (BENCH_query.json): L1 vs database hit latency, the
# allocation-free prediction hot path, and the blocked matmul kernel.
bench-query:
	$(GO) test ./internal/query -run '^$$' -bench 'BenchmarkQueryHit' -benchmem -benchtime 1s
	$(GO) test ./internal/core -run '^$$' -bench 'BenchmarkPredictSteadyState|BenchmarkPredictMemoGet' -benchmem -benchtime 1s
	$(GO) test ./internal/tensor -run '^$$' -bench 'BenchmarkMatmul' -benchmem -benchtime 1s

# Micro-batched prediction throughput (BENCH_predict.json): the packed batch
# path at increasing widths, reporting graphs/s and allocs/op. The width-1
# run is the batching-overhead floor against BenchmarkPredictSteadyState.
bench-predict:
	$(GO) test ./internal/core -run '^$$' -bench 'BenchmarkPredictBatch' -benchmem -benchtime 1s

# Online-retraining baselines (BENCH_retrain.json): engine hot-swap latency,
# the hot-path snapshot read, one full retrain cycle (snapshot → train →
# validate → swap) and the scheduler's uncertainty scoring.
bench-retrain:
	$(GO) test ./internal/serve -run '^$$' \
		-bench 'BenchmarkEngineSwap|BenchmarkEngineSnapshot|BenchmarkRetrainCycle|BenchmarkSchedulerScore' \
		-benchmem -benchtime 1s

# Cluster-serving baselines (BENCH_cluster.json): the router-hop tax on a
# warm L1 hit (direct vs routed) and each routing policy's aggregate L1 hit
# rate over a three-replica repeated-graph workload.
bench-cluster:
	$(GO) test ./internal/server -run '^$$' \
		-bench 'BenchmarkRouterOverhead|BenchmarkClusterPolicyL1' \
		-benchmem -benchtime 1s

# Inference-kernel baselines (BENCH_kernels.json): the packed register-blocked
# matmul microkernel on synthetic shapes, the compiled-plan and plan-less
# serving entry points it feeds, and the allocation-lean L2 point read against
# the legacy record-materializing probe.
bench-kernels:
	$(GO) test ./internal/tensor -run '^$$' -bench 'BenchmarkMatmul' -benchmem -benchtime 1s
	$(GO) test ./internal/core -run '^$$' \
		-bench 'BenchmarkPredictPlanned|BenchmarkPredictSteadyState' -benchmem -benchtime 1s
	$(GO) test ./internal/db -run '^$$' -bench 'BenchmarkPointRead' -benchmem -benchtime 1s

# Profile the serving hot path (the pinned-seed planned-predict loop): CPU and
# allocation pprof captures, then the top-10 cumulative frames of each. The
# kernel/fusion/plan work in DESIGN.md §15 was steered by exactly this view;
# rerun it after touching tensor/gnn/core hot paths to see where time moved.
profile:
	$(GO) test ./internal/core -run '^$$' -bench 'BenchmarkPredictPlanned' -benchtime 2s \
		-cpuprofile $(CURDIR)/cpu.prof -memprofile $(CURDIR)/mem.prof
	$(GO) tool pprof -top -nodecount=10 -cum $(CURDIR)/cpu.prof
	$(GO) tool pprof -top -nodecount=10 -sample_index=alloc_objects $(CURDIR)/mem.prof

# Production load-harness smoke (BENCH_load.json): a pinned-seed 10s
# three-SLO-class workload (poisson/gamma/weibull arrivals) against one
# admission-limited serving core — per-class p50/p95/p99, goodput, shed rate
# and Jain fairness. The 2s deterministic variant runs in `make check` via
# the internal/workload tests.
bench-load:
	$(GO) test ./internal/workload -run '^$$' -bench 'BenchmarkLoadHarness' \
		-benchtime 1x -args -load.out=$(CURDIR)/BENCH_load.json
