GO ?= go

.PHONY: build test race check fmt vet bench bench-db

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with real concurrency: the storage
# engine, the serving path and the data-parallel training stack.
race:
	$(GO) test -race ./internal/db ./internal/query ./internal/hwsim ./internal/server \
		./internal/tensor ./internal/train ./internal/gnn ./internal/core ./internal/baselines

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

check: fmt vet build race test

bench:
	$(GO) test -bench . -benchtime 1x

# Storage-engine baselines (EXPERIMENTS.md): group-commit insert throughput
# per durability mode, the cache-hit read path, snapshot scans vs writers.
bench-db:
	$(GO) test ./internal/db -run '^$$' \
		-bench 'InsertThroughput|QueryHotPath|SnapshotScanWhileWriting' -benchtime 1s
