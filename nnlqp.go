// Package nnlqp is the public interface of the NNLQP reproduction: a
// multi-platform neural network latency query and prediction system with an
// evolving database (Liu et al., ICPP 2022).
//
// The unified invoking interface mirrors the paper's §7:
//
//	client, _ := nnlqp.New(nnlqp.Options{})
//	defer client.Close()
//
//	params := nnlqp.Params{
//	    ModelPath:    "model.nnlqp",
//	    BatchSize:    1,
//	    PlatformName: "cpu-openppl-fp32",
//	}
//	trueLatency, _ := client.Query(params)   // measure (or cache-hit)
//	predLatency, _ := client.Predict(params) // GNN predictor
//
// Query dispatches the model to the (simulated) device farm through the
// NNLQ pipeline — transform, acquire device, measure — unless the evolving
// database already holds the latency for this exact graph structure,
// platform and batch size. Predict runs the NNLP GraphSAGE predictor,
// which must first be trained (TrainPredictor) or loaded (LoadPredictor).
package nnlqp

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"nnlqp/internal/core"
	"nnlqp/internal/db"
	"nnlqp/internal/hwsim"
	"nnlqp/internal/query"
)

// Options configures a Client.
type Options struct {
	// DBDir is the directory of the evolving database; empty means
	// in-memory (no persistence).
	DBDir string
	// DevicesPerPlatform sizes the simulated device farm (default 2).
	DevicesPerPlatform int
	// FarmAddr, when set, uses a remote device farm served by
	// nnlqp-farm / hwsim.ServeFarm instead of an in-process one.
	FarmAddr string
	// PredictorPath, when set, loads a trained predictor at startup.
	PredictorPath string
	// CacheEntries sizes the in-process L1 serving cache in records (0 =
	// default); CacheNegativeTTL bounds how long a known-absent key skips
	// the database probe (0 = default).
	CacheEntries     int
	CacheNegativeTTL time.Duration
}

// Params mirror the paper's query interface: a model, a batch size, and a
// platform name like "gpu-T4-trt7.1-fp32".
type Params struct {
	// ModelPath points to a serialized model (binary .nnlqp or .json). It
	// is ignored when Model is set.
	ModelPath string
	// Model is an in-memory model (see LoadModel and the zoo builders).
	Model *Model
	// BatchSize overrides the model's declared batch size when > 0.
	BatchSize int
	// PlatformName is the target platform.
	PlatformName string
}

// Client is the NNLQP system handle.
type Client struct {
	store  *db.Store
	sys    *query.System
	remote *hwsim.RemoteFarm

	mu   sync.RWMutex
	pred *core.Predictor
}

// New opens (or creates) an NNLQP system.
func New(opts Options) (*Client, error) {
	store, err := db.OpenStore(opts.DBDir)
	if err != nil {
		return nil, err
	}
	c := &Client{store: store}
	var farm query.Measurer
	if opts.FarmAddr != "" {
		rf, err := hwsim.DialFarm(opts.FarmAddr)
		if err != nil {
			store.Close()
			return nil, fmt.Errorf("nnlqp: dial farm: %w", err)
		}
		c.remote = rf
		farm = rf
	} else {
		per := opts.DevicesPerPlatform
		if per <= 0 {
			per = 2
		}
		farm = &hwsim.LocalFarm{Farm: hwsim.NewDefaultFarm(per)}
	}
	c.sys = query.New(store, farm)
	if opts.CacheEntries != 0 || opts.CacheNegativeTTL != 0 {
		c.sys.ConfigureCache(opts.CacheEntries, opts.CacheNegativeTTL)
	}
	if opts.PredictorPath != "" {
		if err := c.LoadPredictor(opts.PredictorPath); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// Checkpoint compacts the evolving database: the engine writes a snapshot
// file and truncates its write-ahead log, bounding reopen (replay) cost.
// A no-op for in-memory databases.
func (c *Client) Checkpoint() error { return c.store.Checkpoint() }

// Close releases the database and any remote farm connection.
func (c *Client) Close() error {
	var first error
	if c.remote != nil {
		first = c.remote.Close()
	}
	if err := c.store.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// resolveModel loads/validates the model referenced by params and applies
// the batch-size override.
func (c *Client) resolveModel(params Params) (*Model, error) {
	m := params.Model
	if m == nil {
		if params.ModelPath == "" {
			return nil, fmt.Errorf("nnlqp: params need Model or ModelPath")
		}
		var err error
		m, err = LoadModel(params.ModelPath)
		if err != nil {
			return nil, err
		}
	}
	if params.BatchSize > 0 && params.BatchSize != m.BatchSize() {
		m = m.WithBatchSize(params.BatchSize)
	}
	return m, nil
}

// Query returns the true latency (ms) of the model on the platform,
// measuring on the device farm unless the database already has the record.
func (c *Client) Query(params Params) (float64, error) {
	r, err := c.QueryDetailed(params)
	if err != nil {
		return 0, err
	}
	return r.LatencyMS, nil
}

// QueryContext is Query bounded by a context: the deadline/cancellation
// propagates through the pipeline into the device wait, so an abandoned
// caller never leaks a device slot.
func (c *Client) QueryContext(ctx context.Context, params Params) (float64, error) {
	r, err := c.QueryDetailedContext(ctx, params)
	if err != nil {
		return 0, err
	}
	return r.LatencyMS, nil
}

// QueryResult carries the latency plus cache/bookkeeping details.
type QueryResult struct {
	LatencyMS float64
	// CacheHit reports whether the record came from the evolving database.
	CacheHit bool
	// Coalesced reports that a concurrent identical query's measurement was
	// shared instead of running a second pipeline.
	Coalesced bool
	// Tier names the cache tier that served a hit: "l1" (in-process memory)
	// or "l2" (the durable database). Empty when the farm measured.
	Tier string
	// PipelineSeconds is the virtual wall-clock cost this query would have
	// had on physical infrastructure (compile + upload + runs on a miss).
	PipelineSeconds float64
}

// QueryDetailed is Query with cache and cost details.
func (c *Client) QueryDetailed(params Params) (*QueryResult, error) {
	return c.QueryDetailedContext(context.Background(), params)
}

// QueryDetailedContext is QueryDetailed bounded by a context.
func (c *Client) QueryDetailedContext(ctx context.Context, params Params) (*QueryResult, error) {
	m, err := c.resolveModel(params)
	if err != nil {
		return nil, err
	}
	res, err := c.sys.Query(ctx, m.g, params.PlatformName)
	if err != nil {
		return nil, err
	}
	return &QueryResult{
		LatencyMS: res.LatencyMS, CacheHit: res.Hit, Coalesced: res.Coalesced,
		Tier: res.Tier, PipelineSeconds: res.SimSeconds,
	}, nil
}

// Predict returns the NNLP-predicted latency (ms) of the model on the
// platform. TrainPredictor or LoadPredictor must have run first.
func (c *Client) Predict(params Params) (float64, error) {
	m, err := c.resolveModel(params)
	if err != nil {
		return 0, err
	}
	c.mu.RLock()
	pred := c.pred
	c.mu.RUnlock()
	if pred == nil {
		return 0, fmt.Errorf("nnlqp: no trained predictor; call TrainPredictor or LoadPredictor")
	}
	return pred.Predict(m.g, params.PlatformName)
}

// PredictAll predicts the model's latency on every platform the predictor
// has a head for, from a single shared graph embedding.
func (c *Client) PredictAll(m *Model) (map[string]float64, error) {
	c.mu.RLock()
	pred := c.pred
	c.mu.RUnlock()
	if pred == nil {
		return nil, fmt.Errorf("nnlqp: no trained predictor; call TrainPredictor or LoadPredictor")
	}
	return pred.PredictAll(m.g)
}

// Platforms lists every platform the system can measure on.
func (c *Client) Platforms() []string { return hwsim.PlatformNames() }

// PredictorPlatforms lists platforms the loaded predictor covers.
func (c *Client) PredictorPlatforms() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.pred == nil {
		return nil
	}
	return c.pred.Platforms()
}

// Stats reports cache behaviour and database cardinalities.
type Stats struct {
	Queries     int
	CacheHits   int
	CacheMisses int
	Coalesced   int
	// Failures counts queries that returned an error to the caller; every
	// query lands in exactly one bucket, so
	// Queries = CacheHits + CacheMisses + Coalesced + Failures.
	Failures int
	// StoreFailures counts measured answers whose durable write failed (the
	// answer was still served, uncached) — storage health, not an outcome
	// bucket.
	StoreFailures int
	HitRatio      float64
	// L1Hits counts hits answered from the in-process L1 tier (a subset of
	// CacheHits); L1Size/L1Evictions/L1NegativeHits describe the tier
	// itself. The remaining CacheHits came from the durable L2 database.
	L1Hits         int
	L1Size         int
	L1Evictions    uint64
	L1NegativeHits uint64
	Models         int
	PlatformRows   int
	Latencies      int
	StorageBytes   int64
	// PredictorGeneration identifies the loaded predictor's weights
	// (0 when no predictor is loaded); a retrain or reload bumps it.
	PredictorGeneration uint64
}

// Stats returns a snapshot of system statistics.
func (c *Client) Stats() Stats {
	qs := c.sys.Stats()
	m, p, l := c.store.Counts()
	var gen uint64
	c.mu.RLock()
	if c.pred != nil {
		gen = c.pred.Generation()
	}
	c.mu.RUnlock()
	return Stats{
		PredictorGeneration: gen,
		Queries:             qs.Queries, CacheHits: qs.Hits, CacheMisses: qs.Misses,
		Coalesced: qs.Coalesced, Failures: qs.Failures,
		StoreFailures: qs.StoreFailures,
		HitRatio:      qs.HitRatio(),
		L1Hits:        qs.L1Hits, L1Size: qs.L1Size,
		L1Evictions: qs.L1Evictions, L1NegativeHits: qs.L1NegHits,
		Models: m, PlatformRows: p, Latencies: l,
		StorageBytes: c.store.StorageBytes(),
	}
}

// SavePredictor writes the trained predictor to a file.
func (c *Client) SavePredictor(path string) error {
	c.mu.RLock()
	pred := c.pred
	c.mu.RUnlock()
	if pred == nil {
		return fmt.Errorf("nnlqp: no trained predictor to save")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pred.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadPredictor loads a predictor previously written by SavePredictor.
func (c *Client) LoadPredictor(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	pred, err := core.Load(f)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.pred = pred
	c.mu.Unlock()
	return nil
}

// Profile measures the model on the platform and returns a per-kernel
// latency breakdown (fusion family, fused in-graph latency, standalone
// latency), the reproduction's analogue of an inference-engine layer
// profile. The breakdown comes from the simulator directly and is not
// cached in the database.
func (c *Client) Profile(m *Model, platform string) (string, error) {
	p, err := hwsim.PlatformByName(platform)
	if err != nil {
		return "", err
	}
	prof, err := p.ProfileModel(m.g)
	if err != nil {
		return "", err
	}
	return prof.Render(20), nil
}
