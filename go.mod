module nnlqp

go 1.22
