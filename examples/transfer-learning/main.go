// Transfer learning: extend a multi-platform predictor to an unseen
// platform with only a handful of measurements (the paper's §8.6 / Fig. 7
// workflow), and compare against training from scratch on the same few
// samples.
package main

import (
	"fmt"
	"log"

	"nnlqp"
)

func main() {
	const (
		newPlatform = "gpu-P4-trt7.1-int8"
		fewSamples  = 24
	)
	pretrainPlatforms := []string{"gpu-T4-trt7.1-fp32", "gpu-T4-trt7.1-int8", "hi3559A-nnie11-int8"}
	families := []string{"ResNet", "SqueezeNet", "MobileNetV2"}

	// Pre-train a shared-backbone multi-head predictor on three platforms.
	pre, err := nnlqp.New(nnlqp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer pre.Close()
	fmt.Printf("pre-training on %v...\n", pretrainPlatforms)
	err = pre.TrainPredictor(nnlqp.TrainOptions{
		Platforms: pretrainPlatforms, Families: families,
		PerPlatform: 50, Epochs: 20, Hidden: 24, Depth: 2, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Fine-tune onto the unseen platform with few samples.
	fmt.Printf("fine-tuning onto unseen platform %s with %d samples...\n", newPlatform, fewSamples)
	if err := pre.FineTuneOnPlatform(newPlatform, fewSamples, 30, 77); err != nil {
		log.Fatal(err)
	}
	tMAPE, tAcc, err := pre.EvaluatePredictor(newPlatform, 30, 555, families...)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: train from scratch with the same few samples.
	scratch, err := nnlqp.New(nnlqp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer scratch.Close()
	fmt.Printf("training from scratch with the same %d samples...\n\n", fewSamples)
	err = scratch.TrainPredictor(nnlqp.TrainOptions{
		Platforms: []string{newPlatform}, Families: families,
		PerPlatform: fewSamples, Epochs: 30, Hidden: 24, Depth: 2, Seed: 77,
	})
	if err != nil {
		log.Fatal(err)
	}
	sMAPE, sAcc, err := scratch.EvaluatePredictor(newPlatform, 30, 555, families...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %10s %10s\n", "regime", "MAPE", "Acc(10%)")
	fmt.Printf("%-22s %9.2f%% %9.2f%%\n", "scratch (few)", sMAPE, sAcc)
	fmt.Printf("%-22s %9.2f%% %9.2f%%\n", "pre-trained + few", tMAPE, tAcc)
	fmt.Println("\nthe pre-trained backbone transfers latency knowledge learned on other")
	fmt.Println("platforms, which matters most when target-platform samples are scarce.")
}
