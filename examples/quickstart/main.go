// Quickstart: the unified invoking interface of the paper's §7 — query a
// model's true latency (measured on the simulated device farm, cached in
// the evolving database) and predict it with the GNN-based NNLP predictor.
package main

import (
	"fmt"
	"log"

	"nnlqp"
)

func main() {
	client, err := nnlqp.New(nnlqp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// A ResNet-18 at batch size 1, like loading "model.onnx".
	model, err := nnlqp.Canonical("ResNet", 1)
	if err != nil {
		log.Fatal(err)
	}
	st, _ := model.Stats()
	fmt.Printf("model %s: %d ops, %.2f GFLOPs, hash %s\n\n",
		model.Name(), st.Operators, st.GFLOPs, model.Hash())

	params := nnlqp.Params{
		Model:        model,
		BatchSize:    1,
		PlatformName: "gpu-T4-trt7.1-fp32",
	}

	// First query: cache miss -> full measurement pipeline on the farm.
	r1, err := client.QueryDetailed(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query #1: %.3f ms  (hit=%v, pipeline would cost %.1fs on real hardware)\n",
		r1.LatencyMS, r1.CacheHit, r1.PipelineSeconds)

	// Second query: served from the evolving database.
	r2, err := client.QueryDetailed(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query #2: %.3f ms  (hit=%v, cost %.1fs)\n\n", r2.LatencyMS, r2.CacheHit, r2.PipelineSeconds)

	// Train a small single-platform predictor, then predict.
	fmt.Println("training a small NNLP predictor (ResNet+SqueezeNet, one platform)...")
	err = client.TrainPredictor(nnlqp.TrainOptions{
		Platforms:   []string{"gpu-T4-trt7.1-fp32"},
		Families:    []string{"ResNet", "SqueezeNet"},
		PerPlatform: 120,
		Epochs:      30,
		Hidden:      24,
		Depth:       2,
	})
	if err != nil {
		log.Fatal(err)
	}
	pred, err := client.Predict(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted: %.3f ms (true %.3f ms, error %+.1f%%)\n",
		pred, r1.LatencyMS, (pred-r1.LatencyMS)/r1.LatencyMS*100)

	s := client.Stats()
	fmt.Printf("\ndatabase: %d models, %d latency records, hit ratio %.0f%%\n",
		s.Models, s.Latencies, s.HitRatio*100)
}
