// Multiplatform: measure one model across the whole (simulated) fleet and
// derive the model-design guidance of the paper's §9 — device choice,
// data-type choice, operator support — then demonstrate that the database
// evolves across process lifetimes.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"nnlqp"
)

func main() {
	dbDir := filepath.Join(os.TempDir(), "nnlqp-multiplatform-example")
	os.RemoveAll(dbDir)

	client, err := nnlqp.New(nnlqp.Options{DBDir: dbDir})
	if err != nil {
		log.Fatal(err)
	}

	model, err := nnlqp.Canonical("ResNet", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measuring %s on every platform:\n\n", model.Name())

	type row struct {
		platform string
		ms       float64
	}
	var rows []row
	for _, plat := range client.Platforms() {
		lat, err := client.Query(nnlqp.Params{Model: model, PlatformName: plat})
		if err != nil {
			fmt.Printf("  %-28s FAILED: %v\n", plat, err)
			continue
		}
		rows = append(rows, row{plat, lat})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ms < rows[j].ms })
	for _, r := range rows {
		fmt.Printf("  %-28s %10.3f ms\n", r.platform, r.ms)
	}

	// §9-style design guidance.
	get := func(p string) float64 {
		for _, r := range rows {
			if r.platform == p {
				return r.ms
			}
		}
		return 0
	}
	fmt.Println("\ndesign guidance (as in paper §9):")
	if t4, p4 := get("gpu-T4-trt7.1-int8"), get("gpu-P4-trt7.1-int8"); t4 > 0 && p4 > 0 {
		fmt.Printf("  - moving int8 inference from P4 to T4 is a %.1fx speedup\n", p4/t4)
	}
	if fp, i8 := get("gpu-T4-trt7.1-fp32"), get("gpu-T4-trt7.1-int8"); fp > 0 && i8 > 0 {
		fmt.Printf("  - int8 vs fp32 on T4: %.1fx faster (weigh against accuracy loss)\n", fp/i8)
	}
	if at, ml := get("atlas300-acl-fp16"), get("mlu270-neuware-int8"); at > 0 && ml > 0 && at < ml {
		fmt.Printf("  - atlas300 beats mlu270 for this model (%.3f vs %.3f ms)\n", at, ml)
	}
	mnv3, _ := nnlqp.Canonical("MobileNetV3", 1)
	if _, err := client.Query(nnlqp.Params{Model: mnv3, PlatformName: "cpu-openppl-fp32"}); err != nil {
		fmt.Printf("  - MobileNetV3 cannot deploy on cpu-openppl-fp32: %v\n", err)
	}

	st := client.Stats()
	fmt.Printf("\nsession 1 database: %d models, %d latency records\n", st.Models, st.Latencies)
	client.Close()

	// Session 2: the evolving database answers instantly from disk.
	client2, err := nnlqp.New(nnlqp.Options{DBDir: dbDir})
	if err != nil {
		log.Fatal(err)
	}
	defer client2.Close()
	defer os.RemoveAll(dbDir)
	r, err := client2.QueryDetailed(nnlqp.Params{Model: model, PlatformName: rows[0].platform})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 2 re-query on %s: %.3f ms, cache hit = %v (cost %.1fs vs %.0fs cold)\n",
		rows[0].platform, r.LatencyMS, r.CacheHit, r.PipelineSeconds, 60.0)
}
