// NAS search: use the latency predictor to screen thousands of candidate
// architectures against a latency budget (the paper's §8.7 / Fig. 9
// workflow), and compare the architecture it finds against a FLOPs-proxy
// search at the same budget.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"nnlqp/internal/core"
	"nnlqp/internal/hwsim"
	"nnlqp/internal/models"
	"nnlqp/internal/nas"
)

const (
	platform  = "gpu-T4-trt7.1-int8"
	trainN    = 150
	candN     = 300
	epochs    = 25
	latBudget = 1.2 // ms
)

func main() {
	p, err := hwsim.PlatformByName(platform)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))

	// Phase 1: measure a small corpus and train the predictor.
	fmt.Printf("measuring %d OFA sub-networks on %s and training NNLP...\n", trainN, platform)
	var train []core.Sample
	for i := 0; i < trainN; i++ {
		g := models.BuildOFA(models.RandomOFASpec(rng, 1))
		g.Name = fmt.Sprintf("train-%03d", i)
		ms, err := p.TrueLatencyMS(g)
		if err != nil {
			log.Fatal(err)
		}
		s, err := core.NewSample(g, ms, platform)
		if err != nil {
			log.Fatal(err)
		}
		train = append(train, s)
	}
	cfg := core.DefaultConfig()
	cfg.Hidden, cfg.Depth, cfg.HeadHidden, cfg.Epochs, cfg.LR = 32, 2, 32, epochs, 2e-3
	pred := core.New(cfg)
	if err := pred.Fit(train); err != nil {
		log.Fatal(err)
	}

	// Phase 2: screen candidates with the predictor (cheap) instead of
	// measuring each one (1000x more expensive).
	fmt.Printf("screening %d candidates against a %.1f ms budget...\n\n", candN, latBudget)
	var cands []nas.Candidate
	for i := 0; i < candN; i++ {
		spec := models.RandomOFASpec(rng, 1)
		g := models.BuildOFA(spec)
		g.Name = fmt.Sprintf("cand-%03d", i)
		pd, err := pred.Predict(g, platform)
		if err != nil {
			log.Fatal(err)
		}
		cost, _ := g.Cost(4)
		truth, _ := p.TrueLatencyMS(g) // oracle, used only for reporting
		cands = append(cands, nas.Candidate{
			Graph: g, Accuracy: models.SyntheticAccuracy(spec),
			TrueLatMS: truth, PredMS: pd, FLOPs: float64(cost.FLOPs),
		})
	}

	// Choose with the predictor vs with a FLOPs budget of equal true cost.
	byPred, ok := nas.BestAccuracyUnder(cands, func(c nas.Candidate) float64 { return c.PredMS }, latBudget)
	if !ok {
		log.Fatal("no candidate under budget")
	}
	// FLOPs proxy: allow the same FLOPs as the median model under budget.
	var flopsCap float64
	var n int
	for _, c := range cands {
		if c.TrueLatMS <= latBudget {
			flopsCap += c.FLOPs
			n++
		}
	}
	flopsCap /= float64(n)
	byFLOPs, _ := nas.BestAccuracyUnder(cands, func(c nas.Candidate) float64 { return c.FLOPs }, flopsCap)

	fmt.Printf("predictor pick: acc %.2f%%  true latency %.3f ms (within budget: %v)\n",
		byPred.Accuracy, byPred.TrueLatMS, byPred.TrueLatMS <= latBudget*1.1)
	fmt.Printf("FLOPs-proxy pick: acc %.2f%%  true latency %.3f ms\n", byFLOPs.Accuracy, byFLOPs.TrueLatMS)
	fmt.Printf("accuracy gain from accurate latency feedback: %+.2f points\n\n",
		byPred.Accuracy-byFLOPs.Accuracy)

	// Rank-correlation summary, as in Fig. 9.
	var truth, pd, fl []float64
	for _, c := range cands {
		truth = append(truth, c.TrueLatMS)
		pd = append(pd, c.PredMS)
		fl = append(fl, c.FLOPs)
	}
	fmt.Printf("Kendall tau vs true latency: predictor %.2f, FLOPs %.2f\n",
		nas.KendallTau(pd, truth), nas.KendallTau(fl, truth))
}
