package nnlqp

// One benchmark per table and figure of the paper's evaluation, each
// regenerating the corresponding experiment through the harness in
// internal/experiments (run `go test -bench Table3 -benchtime 1x` etc.).
// Benchmarks run at a reduced scale so the full suite stays tractable;
// paper-scale regeneration is `nnlqp-experiments -scale paper`. The
// qualitative results recorded in EXPERIMENTS.md come from
// `nnlqp-experiments -scale quick` runs of the same code paths.
//
// Micro-benchmarks for the load-bearing substrates (graph hashing, database
// lookup, simulator execution, GNN inference, matrix kernels) follow.

import (
	"fmt"
	"math/rand"
	"testing"

	"nnlqp/internal/core"
	"nnlqp/internal/db"
	"nnlqp/internal/experiments"
	"nnlqp/internal/feats"
	"nnlqp/internal/graphhash"
	"nnlqp/internal/hwsim"
	"nnlqp/internal/models"
	"nnlqp/internal/tensor"
)

// benchScale sizes the per-table benchmarks: large enough to exercise the
// real code paths, small enough that one iteration is seconds-to-a-minute.
func benchScale() experiments.Options {
	o := experiments.Quick()
	o.PerFamily = 16
	o.TrainPerFamily = 12
	o.TestPerFamily = 4
	o.Epochs = 8
	o.Hidden = 24
	o.Depth = 2
	o.KernelCap = 80
	o.NASSamples = 60
	return o
}

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	o := benchScale()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(name, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2KernelAdditivity(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkTable2QueryEfficiency(b *testing.B)     { benchExperiment(b, "table2") }
func BenchmarkTable3Comparison(b *testing.B)          { benchExperiment(b, "table3") }
func BenchmarkTable4Ablation(b *testing.B)            { benchExperiment(b, "table4") }
func BenchmarkTable5KernelPrediction(b *testing.B)    { benchExperiment(b, "table5") }
func BenchmarkTable6MultiPlatform(b *testing.B)       { benchExperiment(b, "table6") }
func BenchmarkFigure6TransferStructures(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkFigure7TransferPlatforms(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFigure8TaskTransfer(b *testing.B)       { benchExperiment(b, "fig8") }
func BenchmarkFigure9NAS(b *testing.B)                { benchExperiment(b, "fig9") }
func BenchmarkTable7NASCost(b *testing.B)             { benchExperiment(b, "table7") }
func BenchmarkTable8KernelStats(b *testing.B)         { benchExperiment(b, "table8") }
func BenchmarkFigure10FlopsMacTransfer(b *testing.B)  { benchExperiment(b, "fig10") }

// --- substrate micro-benchmarks ---

func benchGraph() *Model {
	m, err := Canonical("ResNet", 1)
	if err != nil {
		panic(err)
	}
	return m
}

// BenchmarkGraphHash measures the Eq. 1-2 structural hash: the cost every
// database query pays before lookup.
func BenchmarkGraphHash(b *testing.B) {
	m := benchGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := graphhash.GraphKey(m.g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorExecute measures one full simulated inference (fusion +
// pricing + scheduling).
func BenchmarkSimulatorExecute(b *testing.B) {
	m := benchGraph()
	p, _ := hwsim.PlatformByName(hwsim.DatasetPlatform)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Execute(m.g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatabaseLookup measures a hash-keyed cache hit against a store
// holding a few thousand models.
func BenchmarkDatabaseLookup(b *testing.B) {
	store, err := db.OpenStore("")
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	rng := rand.New(rand.NewSource(1))
	var keys []graphhash.Key
	for i := 0; i < 2000; i++ {
		g, err := models.Variant(models.FamilySqueezeNet, rng, 1)
		if err != nil {
			b.Fatal(err)
		}
		rec, err := store.InsertModel(g)
		if err != nil {
			b.Fatal(err)
		}
		keys = append(keys, rec.Hash)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := store.FindModelByHash(keys[i%len(keys)]); err != nil || !ok {
			b.Fatal("lookup failed")
		}
	}
}

// BenchmarkFeatureExtraction measures Eq. 3/5 feature extraction.
func BenchmarkFeatureExtraction(b *testing.B) {
	m := benchGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := feats.Extract(m.g, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictorInference measures one end-to-end NNLP prediction
// (features + GNN forward + head).
func BenchmarkPredictorInference(b *testing.B) {
	p, _ := hwsim.PlatformByName(hwsim.DatasetPlatform)
	cfg := core.DefaultConfig()
	cfg.Hidden, cfg.Depth, cfg.HeadHidden, cfg.Epochs = 32, 3, 32, 2
	pred := core.New(cfg)
	rng := rand.New(rand.NewSource(2))
	var train []core.Sample
	for i := 0; i < 24; i++ {
		g, _ := models.Variant(models.FamilyResNet, rng, 1)
		ms, err := p.TrueLatencyMS(g)
		if err != nil {
			b.Fatal(err)
		}
		s, _ := core.NewSample(g, ms, p.Name)
		train = append(train, s)
	}
	if err := pred.Fit(train); err != nil {
		b.Fatal(err)
	}
	m := benchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pred.Predict(m.g, p.Name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainThroughput measures training throughput (samples/sec)
// through the shared Trainer at 1 and 4 gradient workers. The two runs
// produce bit-identical weights (see TestTrainBitIdenticalAcrossWorkers);
// the speedup materializes on multi-core runners.
func BenchmarkTrainThroughput(b *testing.B) {
	p, _ := hwsim.PlatformByName(hwsim.DatasetPlatform)
	rng := rand.New(rand.NewSource(7))
	var samples []core.Sample
	for i := 0; i < 48; i++ {
		g, _ := models.Variant(models.FamilySqueezeNet, rng, 1)
		ms, err := p.TrueLatencyMS(g)
		if err != nil {
			b.Fatal(err)
		}
		s, _ := core.NewSample(g, ms, p.Name)
		samples = append(samples, s)
	}
	const epochs = 6
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Hidden, cfg.Depth, cfg.HeadHidden = 32, 3, 32
			cfg.Epochs = epochs
			cfg.Workers = workers
			cfg.EarlyStop = false
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pred := core.New(cfg)
				if err := pred.Fit(samples); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*epochs*len(samples))/b.Elapsed().Seconds(), "samples/sec")
		})
	}
}

// BenchmarkMatMul64 measures the GNN's core kernel at a typical layer size.
func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := tensor.NewMatrix(128, 64)
	w := tensor.NewMatrix(64, 64)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(a, w)
	}
}

// BenchmarkKernelize measures fusion-rule splitting, the per-query cost of
// the kernel-level baselines.
func BenchmarkKernelize(b *testing.B) {
	m := benchGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hwsim.Kernelize(m.g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryCacheHit measures an end-to-end cached latency query
// (hash + database lookup) through the public API.
func BenchmarkQueryCacheHit(b *testing.B) {
	client, err := New(Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	m := benchGraph()
	params := Params{Model: m, PlatformName: hwsim.DatasetPlatform}
	if _, err := client.Query(params); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Query(params); err != nil {
			b.Fatal(err)
		}
	}
}

// --- design-decision ablation benches (DESIGN.md §5) ---

// BenchmarkAblationLogVsLinearTarget compares training with log-latency vs
// raw-latency regression targets on a small single-family task, reporting
// resulting MAPE as a custom metric.
func BenchmarkAblationLogVsLinearTarget(b *testing.B) {
	p, _ := hwsim.PlatformByName(hwsim.DatasetPlatform)
	rng := rand.New(rand.NewSource(4))
	var train, test []core.Sample
	for i := 0; i < 60; i++ {
		g, _ := models.Variant(models.FamilySqueezeNet, rng, 1)
		ms, err := p.TrueLatencyMS(g)
		if err != nil {
			b.Fatal(err)
		}
		s, _ := core.NewSample(g, ms, p.Name)
		if i < 45 {
			train = append(train, s)
		} else {
			test = append(test, s)
		}
	}
	run := func(logTarget bool) float64 {
		cfg := core.DefaultConfig()
		cfg.Hidden, cfg.Depth, cfg.HeadHidden, cfg.Epochs = 24, 2, 24, 10
		cfg.LogTarget = logTarget
		pr := core.New(cfg)
		if err := pr.Fit(train); err != nil {
			b.Fatal(err)
		}
		m, err := pr.Evaluate(test)
		if err != nil {
			b.Fatal(err)
		}
		return m.MAPE
	}
	var logM, linM float64
	for i := 0; i < b.N; i++ {
		logM = run(true)
		linM = run(false)
	}
	b.ReportMetric(logM, "log-MAPE%")
	b.ReportMetric(linM, "linear-MAPE%")
}

// BenchmarkAblationSumVsMeanPool compares the Eq. 5 sum readout against the
// mean readout this reproduction defaults to.
func BenchmarkAblationSumVsMeanPool(b *testing.B) {
	p, _ := hwsim.PlatformByName(hwsim.DatasetPlatform)
	rng := rand.New(rand.NewSource(5))
	var train, test []core.Sample
	for i := 0; i < 60; i++ {
		fam := models.FamilySqueezeNet
		if i%2 == 0 {
			fam = models.FamilyResNet
		}
		g, _ := models.Variant(fam, rng, 1)
		ms, err := p.TrueLatencyMS(g)
		if err != nil {
			b.Fatal(err)
		}
		s, _ := core.NewSample(g, ms, p.Name)
		if i < 44 {
			train = append(train, s)
		} else {
			test = append(test, s)
		}
	}
	run := func(mean bool) float64 {
		cfg := core.DefaultConfig()
		cfg.Hidden, cfg.Depth, cfg.HeadHidden, cfg.Epochs = 24, 2, 24, 10
		cfg.MeanPool = mean
		pr := core.New(cfg)
		if err := pr.Fit(train); err != nil {
			b.Fatal(err)
		}
		m, err := pr.Evaluate(test)
		if err != nil {
			b.Fatal(err)
		}
		return m.MAPE
	}
	var meanM, sumM float64
	for i := 0; i < b.N; i++ {
		meanM = run(true)
		sumM = run(false)
	}
	b.ReportMetric(meanM, "mean-MAPE%")
	b.ReportMetric(sumM, "sum-MAPE%")
}

// BenchmarkAblationBTreeVsMapIndex compares the B-tree unique index against
// Go's builtin map for hash-keyed lookups at database scale.
func BenchmarkAblationBTreeVsMapIndex(b *testing.B) {
	const n = 100000
	bt := db.NewBTree()
	mp := make(map[uint64]uint64, n)
	rng := rand.New(rand.NewSource(6))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
		bt.Set(keys[i], uint64(i))
		mp[keys[i]] = uint64(i)
	}
	b.Run("btree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := bt.Get(keys[i%n]); !ok {
				b.Fatal("miss")
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := mp[keys[i%n]]; !ok {
				b.Fatal("miss")
			}
		}
	})
}
