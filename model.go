package nnlqp

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"nnlqp/internal/graphhash"
	"nnlqp/internal/models"
	"nnlqp/internal/onnx"
)

// Model is an opaque handle to a weight-free DNN computation graph (the
// system's unit of latency query and prediction).
type Model struct {
	g *onnx.Graph
}

// LoadModel reads a serialized model. The format is auto-detected: the
// compact binary encoding (recommended, extension .nnlqp) or JSON.
func LoadModel(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeModel(data)
}

// DecodeModel parses serialized model bytes (binary or JSON).
func DecodeModel(data []byte) (*Model, error) {
	var g *onnx.Graph
	var err error
	if bytes.HasPrefix(bytes.TrimLeft(data, " \t\r\n"), []byte("{")) {
		g, err = onnx.DecodeJSON(data)
	} else {
		g, err = onnx.DecodeBinary(data)
	}
	if err != nil {
		return nil, fmt.Errorf("nnlqp: decode model: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Model{g: g}, nil
}

// Save writes the model in the compact binary format.
func (m *Model) Save(path string) error {
	data, err := m.g.EncodeBinary()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// MarshalBinary returns the compact binary encoding.
func (m *Model) MarshalBinary() ([]byte, error) { return m.g.EncodeBinary() }

// MarshalJSON returns the human-readable JSON encoding.
func (m *Model) MarshalJSON() ([]byte, error) { return m.g.EncodeJSON() }

// Name returns the model's name.
func (m *Model) Name() string { return m.g.Name }

// Family returns the model-family label.
func (m *Model) Family() string { return m.g.Family }

// NumOperators returns the operator count.
func (m *Model) NumOperators() int { return m.g.NumNodes() }

// BatchSize returns the declared batch size.
func (m *Model) BatchSize() int { return m.g.BatchSize() }

// Hash returns the 8-byte graph-hash key (hex) that identifies this model
// structure in the database.
func (m *Model) Hash() string { return graphhash.MustGraphKey(m.g).String() }

// Stats summarizes the model's static cost figures.
type ModelStats struct {
	Operators int
	GFLOPs    float64
	MParams   float64
	MACMB     float64
}

// Stats computes FLOPs/parameter/memory-access statistics (fp32).
func (m *Model) Stats() (ModelStats, error) {
	c, err := m.g.Cost(4)
	if err != nil {
		return ModelStats{}, err
	}
	return ModelStats{
		Operators: m.g.NumNodes(),
		GFLOPs:    float64(c.FLOPs) / 1e9,
		MParams:   float64(c.Params) / 1e6,
		MACMB:     float64(c.MAC) / (1 << 20),
	}, nil
}

// WithBatchSize returns a copy of the model with a different leading input
// dimension.
func (m *Model) WithBatchSize(batch int) *Model {
	g := m.g.Clone()
	for i := range g.Inputs {
		if len(g.Inputs[i].Shape) > 0 {
			g.Inputs[i].Shape[0] = batch
		}
	}
	return &Model{g: g}
}

// String renders a one-line summary.
func (m *Model) String() string {
	return fmt.Sprintf("%s (%s, %d ops, batch %d)", m.g.Name, m.g.Family, m.g.NumNodes(), m.g.BatchSize())
}

// Families lists the model-zoo family names available to NewVariant and
// Canonical.
func Families() []string { return append([]string(nil), models.Families...) }

// NewVariant builds a random variant of the named family (deterministic
// under seed), mirroring the dataset construction of the paper's §8.1.
func NewVariant(family string, seed int64, batch int) (*Model, error) {
	g, err := models.Variant(family, rand.New(rand.NewSource(seed)), batch)
	if err != nil {
		return nil, err
	}
	g.Name = fmt.Sprintf("%s-seed%d", strings.ToLower(family), seed)
	return &Model{g: g}, nil
}

// Canonical builds the family's canonical architecture (ResNet-18, VGG-16,
// MobileNetV2 1.0×, ...).
func Canonical(family string, batch int) (*Model, error) {
	var g *onnx.Graph
	switch family {
	case models.FamilyAlexNet:
		g = models.BuildAlexNet(models.BaseAlexNet(batch))
	case models.FamilyVGG:
		g = models.BuildVGG(models.BaseVGG(batch))
	case models.FamilyGoogleNet:
		g = models.BuildGoogleNet(models.BaseGoogleNet(batch))
	case models.FamilyResNet:
		g = models.BuildResNet(models.BaseResNet(batch))
	case models.FamilySqueezeNet:
		g = models.BuildSqueezeNet(models.BaseSqueezeNet(batch))
	case models.FamilyMobileNetV2:
		g = models.BuildMobileNetV2(models.BaseMobileNetV2(batch))
	case models.FamilyMobileNetV3:
		g = models.BuildMobileNetV3(models.BaseMobileNetV3(batch))
	case models.FamilyMnasNet:
		g = models.BuildMnasNet(models.BaseMnasNet(batch))
	case models.FamilyEfficientNet:
		g = models.BuildEfficientNet(models.BaseEfficientNet(batch))
	case models.FamilyNasBench201:
		g = models.BuildNasBench201(models.BaseNasBench201(batch))
	case models.FamilyDetection:
		g = models.BuildDetection(models.BaseDetection(batch))
	default:
		return nil, fmt.Errorf("nnlqp: unknown family %q (have %v)", family, Families())
	}
	return &Model{g: g}, nil
}
